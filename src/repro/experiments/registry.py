"""Registry of experiment drivers, keyed by figure identifier.

``run("fig5", preset="quick")`` executes the driver for Figure 5 with the
requested preset and returns its :class:`~repro.experiments.base.ExperimentResult`.
``run_all`` executes every figure (used when regenerating EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..errors import ExperimentError
from .autoscale import autoscale
from .base import ExperimentResult
from .cluster import cluster_scaling
from .config import ExperimentConfig, get_preset
from .controllability import figure9, figure10
from .effectiveness import figure2, figure3, figure4
from .overload import overload
from .predictability import figure5, figure6, figure7, figure8
from .sensitivity import figure11, figure12

__all__ = ["EXPERIMENTS", "run", "run_all", "available_experiments"]

EXPERIMENTS: dict[str, Callable[[ExperimentConfig | None], ExperimentResult]] = {
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    # Extension beyond the paper: the PSD loop over a multi-node cluster.
    "cluster": cluster_scaling,
    # Extension beyond the paper: offered load past capacity, with and
    # without quota-reserve admission control in front of the cluster.
    "overload": overload,
    # Extension beyond the paper: autoscaler policies closing the
    # monitor -> fleet loop under diurnal + flash-crowd load, scored on
    # the SLO-vs-node-hours frontier against a static peak fleet.
    "autoscale": autoscale,
}


def available_experiments() -> tuple[str, ...]:
    """The identifiers of every reproducible figure, in paper order."""
    return tuple(EXPERIMENTS)


def run(
    experiment_id: str,
    *,
    preset: str = "default",
    config: ExperimentConfig | None = None,
) -> ExperimentResult:
    """Run one experiment by figure id with a preset or an explicit config."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if config is None:
        config = get_preset(preset)
    return driver(config)


def run_all(
    *,
    preset: str = "default",
    config: ExperimentConfig | None = None,
    only: Iterable[str] | None = None,
) -> list[ExperimentResult]:
    """Run every registered experiment (or the subset named in ``only``)."""
    wanted = tuple(only) if only is not None else available_experiments()
    for experiment_id in wanted:
        if experiment_id not in EXPERIMENTS:
            raise ExperimentError(f"unknown experiment {experiment_id!r}")
    return [run(eid, preset=preset, config=config) for eid in wanted]
