"""Differentiation predictability (Figures 5, 6, 7 and 8).

Long timescales (Figs. 5-6): for every system load, the 5th/50th/95th
percentiles of the per-window (1000 time units) slowdown ratio between a
lower and a higher class, for several delta ratios.  The paper's findings,
which these drivers reproduce as rows:

* the median ratio tracks the pre-specified delta ratio at every load;
* the band is wide at low loads (at a target of 2 the 5th percentile can drop
  below 1 — a short-term inversion) and tightens as the load grows;
* the band is asymmetric around the median because of the heavy tail.

Short timescales (Figs. 7-8): the slowdowns of individual requests during a
1000-time-unit span at 50% and 90% load.  The paper observes only *weak*
short-timescale predictability — individual requests of the higher class can
experience larger slowdowns than the lower class; the drivers report, per
class, the request count, mean/max slowdown and the fraction of time-adjacent
request pairs whose ordering contradicts the deltas.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.psd import PsdSpec
from ..metrics.percentile import percentile_band
from ..simulation.monitor import MeasurementConfig
from .base import (
    ExperimentResult,
    ServerFactory,
    pooled_window_ratios,
    simulate_psd_point,
)
from .config import ExperimentConfig, get_preset

__all__ = [
    "run_ratio_percentiles",
    "figure5",
    "figure6",
    "run_individual_requests",
    "figure7",
    "figure8",
]


# --------------------------------------------------------------------------- #
# Long-timescale predictability: Figs. 5 and 6
# --------------------------------------------------------------------------- #
def run_ratio_percentiles(
    delta_vectors: Sequence[Sequence[float]],
    config: ExperimentConfig,
    *,
    experiment_id: str,
    title: str,
    server_factory: ServerFactory | None = None,
) -> ExperimentResult:
    """Percentiles of windowed slowdown ratios for one or more delta vectors.

    For every delta vector and every load, each non-reference class
    contributes one row with the 5th/50th/95th percentile of its per-window
    ratio to class 1.
    """
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        parameters={
            "delta_vectors": [tuple(d) for d in delta_vectors],
            "preset": config.name,
            "window": config.measurement.window,
        },
        columns=(
            "deltas",
            "load",
            "ratio_pair",
            "target_ratio",
            "p5",
            "median",
            "p95",
            "windows",
        ),
    )
    for vec_index, deltas in enumerate(delta_vectors):
        spec = PsdSpec(tuple(float(d) for d in deltas))
        for load_index, load in enumerate(config.load_grid):
            classes = config.classes_for_load(load, spec.deltas)
            summary = simulate_psd_point(
                classes,
                spec,
                config,
                seed_offset=1000 * vec_index + load_index,
                server_factory=server_factory,
            )
            for class_index in range(1, spec.num_classes):
                ratios = pooled_window_ratios(summary, class_index, 0)
                band = percentile_band(ratios)
                result.add_row(
                    deltas=tuple(spec.deltas),
                    load=load,
                    ratio_pair=f"class{class_index + 1}/class1",
                    target_ratio=spec.deltas[class_index] / spec.deltas[0],
                    p5=band.p5,
                    median=band.median,
                    p95=band.p95,
                    windows=band.count,
                )
    result.notes.append(
        "Expected shape (paper): the median ratio is close to the target at every "
        "load; the 5th-95th band is widest at light load (the 5th percentile can "
        "fall below 1 for small targets) and narrows as load increases."
    )
    return result


def figure5(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Figure 5: two classes, delta ratios 2, 4 and 8."""
    config = config or get_preset("default")
    return run_ratio_percentiles(
        [(1.0, 2.0), (1.0, 4.0), (1.0, 8.0)],
        config,
        experiment_id="fig5",
        title="Percentiles of windowed slowdown ratios, two classes",
    )


def figure6(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Figure 6: three classes, targets 2 (class 2/1) and 3 (class 3/1)."""
    config = config or get_preset("default")
    return run_ratio_percentiles(
        [(1.0, 2.0, 3.0)],
        config,
        experiment_id="fig6",
        title="Percentiles of windowed slowdown ratios, three classes",
    )


# --------------------------------------------------------------------------- #
# Short-timescale predictability: Figs. 7 and 8
# --------------------------------------------------------------------------- #
def run_individual_requests(
    load: float,
    config: ExperimentConfig,
    *,
    experiment_id: str,
    title: str,
    deltas: Sequence[float] = (1.0, 2.0),
    span: float = 1000.0,
    server_factory: ServerFactory | None = None,
) -> ExperimentResult:
    """Per-request slowdowns over the last ``span`` time units of one run.

    The paper shows the raw scatter; the driver summarises it per class and
    additionally reports the fraction of (higher-class, lower-class) request
    pairs completing within the span whose slowdown ordering contradicts the
    differentiation parameters — the quantitative form of "sometimes the
    behaviour of individual requests is consistent with their slowdown
    parameters, and sometimes not".
    """
    spec = PsdSpec(tuple(float(d) for d in deltas))
    classes = config.classes_for_load(load, spec.deltas)
    service_mean = config.service_distribution().mean()
    measurement: MeasurementConfig = config.scaled_measurement()
    window_start = measurement.horizon - span * service_mean
    summary = simulate_psd_point(
        classes,
        spec,
        config,
        seed_offset=int(load * 100),
        measurement=measurement,
        server_factory=server_factory,
    )
    run = summary.results[0]
    records = run.trace.in_window(window_start, measurement.horizon, by="completion")

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        parameters={
            "load": load,
            "deltas": tuple(spec.deltas),
            "span_time_units": span,
            "preset": config.name,
        },
        columns=("class", "requests", "mean_slowdown", "max_slowdown", "p95_slowdown"),
    )
    per_class_slowdowns: list[np.ndarray] = []
    for c in range(spec.num_classes):
        values = np.asarray([r.slowdown for r in records if r.class_index == c])
        per_class_slowdowns.append(values)
        result.add_row(
            **{
                "class": c + 1,
                "requests": int(values.size),
                "mean_slowdown": float(values.mean()) if values.size else float("nan"),
                "max_slowdown": float(values.max()) if values.size else float("nan"),
                "p95_slowdown": float(np.percentile(values, 95)) if values.size else float("nan"),
            }
        )

    if per_class_slowdowns[0].size and per_class_slowdowns[-1].size:
        higher = per_class_slowdowns[0]
        lower = per_class_slowdowns[-1]
        inversions = float(np.mean(higher[:, None] > lower[None, :]))
        window_ratio = (float(lower.mean() / higher.mean()) if higher.mean() > 0 else float("nan"))
        result.notes.append(
            f"fraction of (class1, class{spec.num_classes}) request pairs in the span "
            f"where class 1's slowdown exceeds class {spec.num_classes}'s: {inversions:.3f}"
        )
        result.notes.append(
            f"slowdown ratio class{spec.num_classes}/class1 over this span alone: "
            f"{window_ratio:.3f} (target {spec.deltas[-1] / spec.deltas[0]:.1f})"
        )
    result.notes.append(
        "Expected shape (paper): per-request slowdowns are noisy; the target ordering "
        "often fails over short spans (weak short-timescale predictability), and the "
        "short-span ratio can even invert (the paper measured 0.33 against a target of 2 "
        "in one 1000-unit span at 90% load)."
    )
    return result


def figure7(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Figure 7: individual request slowdowns at 50% load."""
    config = config or get_preset("default")
    return run_individual_requests(
        0.5,
        config,
        experiment_id="fig7",
        title="Slowdown of individual requests, system load 50%",
    )


def figure8(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Figure 8: individual request slowdowns at 90% load."""
    config = config or get_preset("default")
    return run_individual_requests(
        0.9,
        config,
        experiment_id="fig8",
        title="Slowdown of individual requests, system load 90%",
    )
