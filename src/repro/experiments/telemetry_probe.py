"""An instrumented cluster-churn probe behind the CLI's ``--telemetry`` flag.

The experiment drivers answer *what* the controller achieves; this probe
answers *how a run behaves while achieving it*.  It replays one replication
of the cluster experiment's churn cell — a capacity-aware fleet losing and
regaining a node mid-run — with a live :class:`repro.telemetry.Telemetry`
facade attached, then packages every exporter the telemetry layer offers:

* a :class:`repro.telemetry.TelemetrySummary` for the terminal,
* Chrome trace-event JSON (``trace.json``, open in Perfetto / about:tracing),
* the metric stream (``metrics.jsonl``) and per-window cluster health
  snapshots (``health.jsonl``) when an output directory is given.

The probe seeds everything from ``config.base_seed``, so its artefacts are
as reproducible as the experiment tables themselves.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cluster import make_cluster, parse_fleet_events, resolve_capacities
from ..core.feedback import FeedbackPsdController
from ..core.psd import PsdSpec
from ..simulation.scenario import Scenario, SimulationResult
from ..telemetry import (
    Telemetry,
    TelemetrySummary,
    build_health_snapshots,
    chrome_trace_events,
    write_chrome_trace,
)
from .config import ExperimentConfig, get_preset

__all__ = ["TelemetryProbeResult", "run_telemetry_probe"]

#: Fleet geometry of the probe: enough nodes for churn to matter, small
#: enough that the trace stays readable in a viewer.
PROBE_NODES = 3


@dataclass
class TelemetryProbeResult:
    """Everything the ``--telemetry`` probe produced."""

    summary: TelemetrySummary
    result: SimulationResult
    trace_events: list[dict]
    snapshots: tuple
    #: Files written under ``--telemetry-out`` (empty without an out dir).
    paths: dict[str, Path] = field(default_factory=dict)

    def to_text(self) -> str:
        lines = [self.summary.to_text()]
        if self.snapshots:
            worst = min(self.snapshots, key=lambda s: s.live_fraction)
            lines.append(
                f"# cluster health: {len(self.snapshots)} windows, "
                f"lowest live fraction {worst.live_fraction:.2f} "
                f"in window {worst.window_index}"
            )
        for kind, path in sorted(self.paths.items()):
            lines.append(f"# wrote {kind}: {path}")
        return "\n".join(lines)


def _probe_fleet(config: ExperimentConfig, warmup: float):
    """The config's churn schedule, or a default mid-run kill/restore."""
    schedule = config.fleet_schedule()
    if schedule is None:
        schedule = parse_fleet_events(
            (f"kill:1@{warmup * 2:g}", f"restore:1@{warmup * 4:g}")
        )
    schedule.validate_for(PROBE_NODES)
    return schedule.scaled_to_time_units(config.service_distribution().mean())


def run_telemetry_probe(
    config: ExperimentConfig | None = None,
    *,
    deltas: Sequence[float] = (1.0, 2.0),
    load: float | None = None,
    out_dir: str | Path | None = None,
) -> TelemetryProbeResult:
    """Run the instrumented churn replication and collect every exporter."""
    config = config or get_preset("quick")
    spec = PsdSpec(tuple(float(d) for d in deltas))
    load = max(config.load_grid) if load is None else float(load)
    classes = config.classes_for_load(load, spec.deltas)
    scaled = config.scaled_measurement()

    telemetry = Telemetry()
    cluster = make_cluster(
        PROBE_NODES,
        "weighted_jsq",
        capacities=resolve_capacities("2:1", PROBE_NODES),
        seed=np.random.SeedSequence(entropy=(config.base_seed, 1)),
        fleet=_probe_fleet(config, config.measurement.warmup),
        record_dispatch=True,
    )
    result = Scenario(
        classes,
        scaled,
        server=cluster,
        controller=FeedbackPsdController(classes, spec),
        seed=np.random.SeedSequence(entropy=config.base_seed),
        telemetry=telemetry,
    ).run()

    trace = chrome_trace_events(result, seed=config.base_seed, telemetry=telemetry)
    snapshots = tuple(build_health_snapshots(result, telemetry=telemetry))
    probe = TelemetryProbeResult(
        summary=TelemetrySummary.from_run(telemetry, result),
        result=result,
        trace_events=trace,
        snapshots=snapshots,
    )
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        probe.paths["trace"] = out / "trace.json"
        write_chrome_trace(probe.paths["trace"], trace)
        probe.paths["metrics"] = out / "metrics.jsonl"
        telemetry.registry.write_jsonl(probe.paths["metrics"])
        probe.paths["health"] = out / "health.jsonl"
        import json

        with probe.paths["health"].open("w") as stream:
            for snapshot in snapshots:
                stream.write(json.dumps(snapshot.to_row()) + "\n")
    return probe
