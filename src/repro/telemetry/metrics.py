"""Streaming simulation metrics: counters, gauges and histograms.

Instruments are created lazily through a :class:`MetricsRegistry` and
stamped with *simulated* time: the registry holds a clock callable (a
scenario installs its engine's ``now``), gauges append ``(sim_time, value)``
samples, and counters/histograms aggregate without per-event allocation.
The registry serialises to a JSONL metric stream (:meth:`MetricsRegistry.
write_jsonl`) — one self-describing row per counter, per gauge sample and
per histogram.

Everything here is plain Python over scalars at window-boundary frequency;
the hot-path guarantee (telemetry off costs nothing) lives one layer up, in
:class:`repro.telemetry.Telemetry` and the ``is not None`` guards at the
instrumented call sites.
"""

from __future__ import annotations

import json
import math
from collections.abc import Callable, Iterator

from ..errors import ParameterError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ParameterError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self.value += int(amount)

    def rows(self) -> Iterator[dict]:
        yield {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A sampled value with its full simulated-time series.

    Gauges are set at estimation-window frequency (queue depths, utilisation,
    live-node counts), so keeping the whole series is cheap and gives the
    health-snapshot and summary layers a real time axis to work with.
    """

    __slots__ = ("name", "_clock", "series")

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self._clock = clock
        self.series: list[tuple[float, float]] = []

    def set(self, value: float) -> None:
        self.series.append((float(self._clock()), float(value)))

    @property
    def value(self) -> float:
        """The most recent sample (NaN before the first ``set``)."""
        return self.series[-1][1] if self.series else math.nan

    def rows(self) -> Iterator[dict]:
        for time, value in self.series:
            yield {"type": "gauge", "name": self.name, "time": time, "value": value}


class Histogram:
    """A streaming histogram: count/sum/min/max plus power-of-two buckets.

    Observations land in the bucket ``(2**(e-1), 2**e]`` holding their value
    (``math.frexp`` exponent), so the structure is fixed-size no matter how
    many values stream through — the shape Internet-server slowdown and
    batch-size distributions need (orders of magnitude, not fine bins).
    Zero and negative observations share a dedicated underflow bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int | None, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # frexp(v) = (m, e) with v = m * 2**e and 0.5 <= m < 1 maps a positive
        # v into the half-open bucket (2**(e-1), 2**e] — except an exact power
        # of two (m == 0.5) sits on the *lower* edge and belongs one bucket down.
        if value > 0.0:
            mantissa, key = math.frexp(value)
            if mantissa == 0.5:
                key -= 1
        else:
            key = None
        self._buckets[key] = self._buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` pairs in ascending bound order."""
        out = []
        if None in self._buckets:
            out.append((0.0, self._buckets[None]))
        out.extend(
            (math.ldexp(1.0, exponent), self._buckets[exponent])
            for exponent in sorted(k for k in self._buckets if k is not None)
        )
        return out

    def rows(self) -> Iterator[dict]:
        yield {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [{"le": bound, "count": count} for bound, count in self.buckets()],
        }


class MetricsRegistry:
    """Lazily created named instruments sharing one simulated-time clock.

    One flat namespace: asking for an existing name with a different
    instrument kind is an error (a metric cannot be both a counter and a
    gauge).  Iteration orders follow first creation, so exports are
    deterministic run to run.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Install the simulated-time source stamped onto gauge samples.

        Existing gauges keep sampling through the registry, so a clock
        installed after creation still applies to every instrument.
        """
        self._clock = clock

    def _now(self) -> float:
        return float(self._clock())

    def _get(self, name: str, kind: type, factory: Callable[[], object]):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument  # type: ignore[assignment]
        elif not isinstance(instrument, kind):
            raise ParameterError(
                f"metric {name!r} is a {type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, self._now))

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, if any."""
        return self._instruments.get(name)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """Every instrument, in creation order."""
        return list(self._instruments.values())

    def rows(self) -> Iterator[dict]:
        """One self-describing dict per counter, gauge sample and histogram."""
        for instrument in self._instruments.values():
            yield from instrument.rows()

    def write_jsonl(self, path) -> int:
        """Write the metric stream to ``path`` as JSON lines; returns the row count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for row in self.rows():
                handle.write(json.dumps(row) + "\n")
                count += 1
        return count
