"""Structured logging for the simulation stack (stdlib :mod:`logging`).

Every logger lives under the ``"repro"`` root (``repro.cluster``,
``repro.runner``, ...), so one :func:`configure_logging` call — or the
experiments CLI's ``--log-level`` flag — controls the whole library without
touching the host application's root logger.

Call sites emit *structured* events through :func:`log_event`: a short
``event key=value ...`` message for humans, with the raw field dict riding
the :class:`logging.LogRecord` as ``record.structured`` for handlers (and
tests) that want machine-readable access.  :func:`log_event` returns
immediately when the level is disabled, so instrumented fallback paths cost
one level check when nobody is listening.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["ROOT_LOGGER", "get_logger", "log_event", "configure_logging"]

#: The library's root logger name; every :func:`get_logger` child nests below.
ROOT_LOGGER = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """The library logger ``repro.<name>`` (the ``repro`` root for ``""``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    text = str(value)
    return repr(text) if " " in text else text


def log_event(logger: logging.Logger, level: int, event: str, **fields: object) -> None:
    """Emit ``event key=value ...`` with the raw fields on ``record.structured``.

    The enabled-level check runs first so instrumenting a silent code path
    (worker-pool fallbacks, fleet transitions) costs a single comparison
    unless the level is actually on.
    """
    if not logger.isEnabledFor(level):
        return
    message = event
    if fields:
        message += " " + " ".join(f"{k}={_format_value(v)}" for k, v in fields.items())
    logger.log(level, message, extra={"structured": {"event": event, **fields}})


def configure_logging(
    level: int | str = "INFO", *, stream: IO[str] | None = None
) -> logging.Logger:
    """Point the ``repro`` root logger at ``stream`` (stderr) at ``level``.

    Idempotent: re-configuring replaces the handler installed by a previous
    call instead of stacking a duplicate.  Propagation to the application's
    root logger is left on, so host processes (and pytest's ``caplog``) that
    install their own handlers still see every record.
    """
    if isinstance(level, str):
        mapping = logging.getLevelNamesMapping()
        try:
            numeric = mapping[level.upper()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from "
                f"{sorted(name for name in mapping if not name.startswith('Level'))}"
            ) from None
    else:
        numeric = int(level)
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(numeric)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    for existing in list(root.handlers):
        if getattr(existing, "_repro_handler", False):
            root.removeHandler(existing)
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root
