"""Span-based request tracing exported as Chrome trace-event JSON.

Traces are assembled *after* the run, from artefacts the simulation records
anyway (the ledger's lifecycle columns, ``rate_history``, ``dispatch_log``,
``fleet_timeline`` and — optionally — a :class:`~repro.telemetry.Telemetry`
facade's batch/drain marks).  Building post-run has two consequences worth
the design: the hot path pays nothing for tracing, and the trace is a pure
function of the :class:`~repro.simulation.SimulationResult` — a run under
``workers=N`` produces byte-identical events to the serial run because the
results themselves are bit-identical.

Sampling is deterministic and seed-stable: each request's keep/drop decision
is a `splitmix64 <https://prng.di.unimi.it/splitmix64.c>`_ hash of
``(replication seed, request id)`` compared against the sample rate, so two
runs of the same replication — serial or parallel, whole-run or resumed —
select the same request ids.

The output is the Chrome trace-event JSON object format (``traceEvents`` +
``displayTimeUnit``), viewable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Simulated seconds map to trace microseconds.
"""

from __future__ import annotations

import json

import numpy as np

from ..errors import ParameterError

__all__ = [
    "trace_seed",
    "sample_mask",
    "chrome_trace_events",
    "write_chrome_trace",
]

#: Simulated time (seconds) -> trace-event timestamps (microseconds).
TS_SCALE = 1e6

#: Trace-event ``pid`` namespaces: run-level phases, request lifecycles,
#: and per-node fleet state lanes.
PID_PHASES = 0
PID_REQUESTS = 1
PID_FLEET = 2

_U64 = np.uint64
_MASK64 = (1 << 64) - 1


def trace_seed(seed: "int | np.random.SeedSequence") -> int:
    """A stable 64-bit key from a replication seed.

    Accepts the integer or :class:`numpy.random.SeedSequence` the scenario
    was built with.  ``generate_state`` is a pure function of the sequence's
    entropy — it never advances the spawn state — so deriving the trace key
    does not perturb any RNG stream the simulation used.
    """
    if isinstance(seed, np.random.SeedSequence):
        words = seed.generate_state(2, dtype=np.uint32)
        return (int(words[0]) << 32) | int(words[1])
    return int(seed) & _MASK64


def _splitmix64(values: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):
        x = values + _U64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
        return x ^ (x >> _U64(31))


def sample_mask(
    rids: np.ndarray, seed: "int | np.random.SeedSequence", rate: float
) -> np.ndarray:
    """Deterministic per-request keep mask at ``rate``.

    Request ``rid`` is kept iff ``splitmix64(rid ^ key) < rate * 2**64`` with
    ``key = trace_seed(seed)`` — a pure function of ``(seed, rid)``, so the
    same requests are selected no matter how (or how often) the run that
    produced them was executed.
    """
    if not 0.0 <= rate <= 1.0:
        raise ParameterError(f"sample rate must be within [0, 1], got {rate}")
    rids = np.asarray(rids)
    if rate >= 1.0:
        return np.ones(rids.shape[0], dtype=bool)
    if rate <= 0.0:
        return np.zeros(rids.shape[0], dtype=bool)
    key = _U64(trace_seed(seed))
    with np.errstate(over="ignore"):
        hashed = _splitmix64(rids.astype(np.uint64) ^ key)
    threshold = _U64(min(int(rate * 2.0**64), _MASK64))
    return hashed < threshold


def _metadata(pid: int, name: str) -> dict:
    return {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}


def chrome_trace_events(
    result,
    *,
    seed: "int | np.random.SeedSequence" = 0,
    sample_rate: float | None = None,
    telemetry=None,
) -> list[dict]:
    """Build the Chrome trace-event list for one simulation result.

    ``seed`` must be the replication seed the scenario ran with — it keys
    the deterministic request sampling.  ``sample_rate`` defaults to the
    telemetry facade's ``trace_sample_rate`` (or 1.0 without one).  Passing
    the run's :class:`~repro.telemetry.Telemetry` additionally emits instant
    events for the batched path's arrival blocks and bulk drains.

    Event layout: ``pid 0`` carries run phases (estimation-window spans,
    batch/drain instants), ``pid 1`` the sampled request lifecycles (one
    ``queued`` + one ``service`` complete-span per request; ``tid`` is the
    serving node for clustered runs with a dispatch log, the request's class
    otherwise), ``pid 2`` per-node fleet state (draining/down spans and
    fleet-event instants).
    """
    if sample_rate is None:
        sample_rate = telemetry.trace_sample_rate if telemetry is not None else 1.0
    ledger = result.ledger
    if ledger is None:
        raise ParameterError("chrome_trace_events needs a result carrying its ledger")
    horizon = float(result.config.horizon)
    events: list[dict] = [
        _metadata(PID_PHASES, "phases"),
        _metadata(PID_REQUESTS, "requests"),
    ]

    # --- request lifecycle spans (deterministically sampled) ---------- #
    ids = ledger.completed_ids
    keep = sample_mask(ids, seed, sample_rate)
    dispatch_log = result.dispatch_log
    for rid in ids[keep]:
        rid = int(rid)
        arrival = float(ledger.arrival_time[rid])
        start = float(ledger.service_start_time[rid])
        completion = float(ledger.completion_time[rid])
        class_index = int(ledger.class_index[rid])
        # dispatch_log is rid-dense: every ledger row is submitted exactly
        # once in row order, so row id indexes the node choices directly.
        node = int(dispatch_log[rid]) if dispatch_log is not None else None
        tid = node if node is not None else class_index
        args = {"rid": rid, "class": class_index}
        if node is not None:
            args["node"] = node
        events.append(
            {
                "name": f"queued c{class_index}",
                "cat": "request",
                "ph": "X",
                "ts": arrival * TS_SCALE,
                "dur": max(start - arrival, 0.0) * TS_SCALE,
                "pid": PID_REQUESTS,
                "tid": tid,
                "args": args,
            }
        )
        events.append(
            {
                "name": f"service c{class_index}",
                "cat": "request",
                "ph": "X",
                "ts": start * TS_SCALE,
                "dur": max(completion - start, 0.0) * TS_SCALE,
                "pid": PID_REQUESTS,
                "tid": tid,
                "args": args,
            }
        )

    # --- estimation-window phase spans -------------------------------- #
    history = result.rate_history
    for index, (time, rates) in enumerate(history):
        end = history[index + 1][0] if index + 1 < len(history) else horizon
        events.append(
            {
                "name": f"window {index}",
                "cat": "phase",
                "ph": "X",
                "ts": float(time) * TS_SCALE,
                "dur": max(end - time, 0.0) * TS_SCALE,
                "pid": PID_PHASES,
                "tid": 0,
                "args": {"rates": [float(r) for r in rates]},
            }
        )

    # --- batched-path block/drain instants ----------------------------- #
    if telemetry is not None:
        for time, size in telemetry.batch_marks:
            events.append(
                {
                    "name": "batch",
                    "cat": "phase",
                    "ph": "i",
                    "ts": time * TS_SCALE,
                    "pid": PID_PHASES,
                    "tid": 1,
                    "s": "p",
                    "args": {"size": size},
                }
            )
        for time, count in telemetry.drain_marks:
            events.append(
                {
                    "name": "drain",
                    "cat": "phase",
                    "ph": "i",
                    "ts": time * TS_SCALE,
                    "pid": PID_PHASES,
                    "tid": 1,
                    "s": "p",
                    "args": {"completions": count},
                }
            )

    # --- fleet state lanes --------------------------------------------- #
    timeline = result.fleet_timeline
    if timeline:
        from ..cluster.fleet import NODE_LIVE, node_state_spans

        events.append(_metadata(PID_FLEET, "fleet"))
        for time, states, capacities in timeline[1:]:
            events.append(
                {
                    "name": "fleet event",
                    "cat": "fleet",
                    "ph": "i",
                    "ts": float(time) * TS_SCALE,
                    "pid": PID_FLEET,
                    "tid": 0,
                    "s": "p",
                    "args": {
                        "states": list(states),
                        "capacities": [c if c is None else float(c) for c in capacities],
                    },
                }
            )
        for node, state, start, end in node_state_spans(timeline, horizon=horizon):
            if state == NODE_LIVE:
                continue
            events.append(
                {
                    "name": state,
                    "cat": "fleet",
                    "ph": "X",
                    "ts": float(start) * TS_SCALE,
                    "dur": max(end - start, 0.0) * TS_SCALE,
                    "pid": PID_FLEET,
                    "tid": node + 1,
                    "args": {"node": node},
                }
            )
    return events


def write_chrome_trace(path, events: list[dict]) -> int:
    """Write ``events`` as a Chrome trace-event JSON object; returns the count.

    The object form (``{"traceEvents": [...]}``) is what Perfetto and
    ``chrome://tracing`` load directly.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)
