"""The :class:`Telemetry` facade: every instrumentation hook in one object.

A scenario (and, through it, the server models, cluster and engine) accepts
an optional ``telemetry`` argument.  ``None`` — the default — is the no-op
fast path: every instrumented call site guards with ``is not None``, so a
run without telemetry executes exactly the pre-telemetry instruction stream
and its aggregates stay bit-identical.  A disabled facade
(``Telemetry(enabled=False)``) is the next-cheapest tier: hooks are invoked
but return after one attribute check, which is what the event-throughput
bench pins below 2% overhead.

Hook frequency is the design constraint.  Everything here fires at
window-boundary, batch or fleet-event frequency — never per request on the
batched hot path: admission decisions arrive per-decision on the per-event
path (:meth:`Telemetry.on_admission`) but as one block-level call per
window on the batched path (:meth:`Telemetry.on_admission_block`), both
feeding the same counters.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from ..core.admission import AdmissionDecision
from ..errors import ParameterError
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulation imports us)
    from ..simulation.events import Event
    from ..simulation.scenario import Scenario

__all__ = ["Telemetry"]


class Telemetry:
    """Injectable metrics + tracing + health collection for one simulation run.

    Parameters
    ----------
    enabled:
        ``False`` turns every hook into an immediate return — instruments
        stay empty and the run's aggregates are bit-identical to a run with
        no telemetry at all.
    trace_sample_rate:
        Fraction of request lifecycles exported by
        :func:`repro.telemetry.chrome_trace_events` (the sampling decision
        itself is deterministic in the replication seed and request id, see
        :func:`repro.telemetry.sample_mask`).

    A telemetry object holds per-run state (gauge series, drain marks);
    build a fresh one per scenario, exactly like server models.
    """

    def __init__(self, *, enabled: bool = True, trace_sample_rate: float = 1.0) -> None:
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ParameterError(
                f"trace_sample_rate must be within [0, 1], got {trace_sample_rate}"
            )
        self.enabled = bool(enabled)
        self.trace_sample_rate = float(trace_sample_rate)
        self.registry = MetricsRegistry()
        #: ``(sim_time, block_size)`` per arrival block of the batched path.
        self.batch_marks: list[tuple[float, int]] = []
        #: ``(sim_time, completions)`` per bulk drain of the batched path.
        self.drain_marks: list[tuple[float, int]] = []
        #: ``(sim_time, per-node pending totals)`` sampled at every window
        #: boundary of a clustered run — the backlog series
        #: :func:`repro.telemetry.build_health_snapshots` consumes.
        self.node_backlog_marks: list[tuple[float, tuple[int, ...]]] = []
        self._seen_completed = 0

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Stamp gauge samples with this simulated-time source."""
        self.registry.set_clock(clock)

    # ------------------------------------------------------------------ #
    # Engine
    # ------------------------------------------------------------------ #
    def on_event(self, event: "Event") -> None:
        """Engine listener: count dispatched events per label family.

        Installed via :meth:`repro.simulation.SimulationEngine.set_listener`
        only when telemetry is enabled, so the default engine loop carries a
        single ``is not None`` branch.
        """
        if not self.enabled:
            return
        label = event.label or "anonymous"
        self.registry.counter(f"engine.events.{label.split('-', 1)[0]}").inc()

    # ------------------------------------------------------------------ #
    # Scenario lifecycle
    # ------------------------------------------------------------------ #
    def on_run_start(self, scenario: "Scenario") -> None:
        if not self.enabled:
            return
        self.registry.counter("scenario.runs").inc()
        self.registry.gauge("scenario.classes").set(len(scenario.classes))

    def on_batch(self, now: float, size: int) -> None:
        """An arrival block of ``size`` requests was pre-drawn (batched path)."""
        if not self.enabled:
            return
        self.batch_marks.append((float(now), int(size)))
        self.registry.histogram("scenario.batch_size").observe(size)

    def on_drain(self, now: float, count: int) -> None:
        """A bulk drain logged ``count`` completions (batched path)."""
        if not self.enabled:
            return
        self.drain_marks.append((float(now), int(count)))
        self.registry.histogram("scenario.drain_length").observe(count)

    def on_server_drain(self, class_index: int | None, count: int) -> None:
        """One member server's drain run (per-class task server or shared)."""
        if not self.enabled:
            return
        name = "shared.drain_length" if class_index is None else f"class{class_index}.drain_length"
        self.registry.histogram(name).observe(count)

    def on_admission(self, class_index: int, decision) -> None:
        """One admission decision (per-event path only).

        ``decision`` is an :class:`~repro.core.AdmissionDecision`; the
        legacy booleans are still accepted (``True`` → ``ACCEPT``,
        ``False`` → ``SHED``).  Accepted and degraded decisions both count
        as ``admission.accepted`` — they enter the server — with degraded
        ones additionally tallied under ``admission.degraded``.
        """
        if not self.enabled:
            return
        if decision is True:
            decision = AdmissionDecision.ACCEPT
        elif decision is False:
            decision = AdmissionDecision.SHED
        reg = self.registry
        if decision == AdmissionDecision.SHED:
            reg.counter("admission.rejected").inc()
            reg.counter(f"admission.class{class_index}.rejected").inc()
        else:
            reg.counter("admission.accepted").inc()
            if decision == AdmissionDecision.DEGRADE:
                reg.counter("admission.degraded").inc()
                reg.counter(f"admission.class{class_index}.degraded").inc()

    def on_admission_block(self, classes: np.ndarray, decisions: np.ndarray) -> None:
        """A block of admission decisions (batched path).

        Feeds exactly the counters :meth:`on_admission` does, one bulk
        increment per counter; ``classes`` are the *origin* classes.
        """
        if not self.enabled:
            return
        reg = self.registry
        shed = decisions == int(AdmissionDecision.SHED)
        num_shed = int(np.count_nonzero(shed))
        if num_shed:
            reg.counter("admission.rejected").inc(num_shed)
            for index, count in enumerate(np.bincount(classes[shed])):
                if count:
                    reg.counter(f"admission.class{index}.rejected").inc(int(count))
        accepted = decisions.shape[0] - num_shed
        if accepted:
            reg.counter("admission.accepted").inc(accepted)
        degraded = decisions == int(AdmissionDecision.DEGRADE)
        num_degraded = int(np.count_nonzero(degraded))
        if num_degraded:
            reg.counter("admission.degraded").inc(num_degraded)
            for index, count in enumerate(np.bincount(classes[degraded])):
                if count:
                    reg.counter(f"admission.class{index}.degraded").inc(int(count))

    def on_window(
        self,
        scenario: "Scenario",
        arrivals: tuple[int, ...],
        work: tuple[float, ...],
        slowdowns: tuple[float, ...],
        rates: tuple[float, ...],
    ) -> None:
        """One estimation-window boundary: the run's periodic observation point."""
        if not self.enabled:
            return
        reg = self.registry
        reg.counter("scenario.windows").inc()
        reg.counter("scenario.arrivals").inc(int(sum(arrivals)))
        completed = scenario.ledger.num_completed
        reg.counter("scenario.completions").inc(completed - self._seen_completed)
        self._seen_completed = completed
        reg.histogram("scenario.window_arrivals").observe(sum(arrivals))
        reg.histogram("scenario.window_work").observe(sum(work))
        backlogs = scenario.server.backlogs()
        for index, depth in enumerate(backlogs):
            reg.gauge(f"class{index}.queue_depth").set(depth)
        reg.gauge("server.backlog_total").set(sum(backlogs))
        for index, rate in enumerate(rates):
            reg.gauge(f"class{index}.rate").set(rate)
        capacity = scenario.server.capacity
        if capacity:
            reg.gauge("server.utilisation").set(sum(rates) / capacity)
        self._observe_cluster(scenario.server)

    def _observe_cluster(self, server) -> None:
        """Per-node gauges + the backlog mark series for clustered servers."""
        live = getattr(server, "live_nodes", None)
        if live is None:
            return
        reg = self.registry
        reg.gauge("cluster.live_nodes").set(len(live))
        now = float(server.engine.now)
        num_nodes, num_classes = server.num_nodes, server.num_classes
        pending = tuple(
            sum(server.pending(node, c) for c in range(num_classes)) for node in range(num_nodes)
        )
        self.node_backlog_marks.append((now, pending))
        counts = server.dispatch_counts()
        share_history = getattr(server, "share_history", None)
        shares = share_history[-1][1] if share_history else None
        for node in range(num_nodes):
            reg.gauge(f"cluster.node{node}.backlog").set(pending[node])
            reg.gauge(f"cluster.node{node}.dispatched").set(sum(counts[node]))
            if shares is not None:
                assigned = sum(shares[node])
                reg.gauge(f"cluster.node{node}.utilisation").set(
                    assigned / server.node_capacity(node)
                )

    # ------------------------------------------------------------------ #
    # Cluster fleet
    # ------------------------------------------------------------------ #
    def on_fleet_change(self, cluster) -> None:
        """A fleet event (join / leave / set_capacity) was applied."""
        if not self.enabled:
            return
        self.registry.counter("fleet.events").inc()
        self.registry.gauge("cluster.live_nodes").set(len(cluster.live_nodes))

    def on_autoscale(self, events, cluster) -> None:
        """An autoscaler decision was applied: per-direction scale counters.

        ``events`` are the boundary's emitted
        :class:`~repro.cluster.FleetEvent` instances; the generic
        ``fleet.events`` counter already ticked once per applied event (via
        :meth:`on_fleet_change`), so this hook only adds the
        direction-split decision counters the autoscale experiment reports.
        """
        if not self.enabled:
            return
        reg = self.registry
        for event in events:
            if event.action == "join":
                reg.counter("autoscale.scale_out").inc()
            elif event.action == "leave":
                reg.counter("autoscale.scale_in").inc()
            else:
                reg.counter("autoscale.set_capacity").inc()
        reg.gauge("cluster.live_nodes").set(len(cluster.live_nodes))

    def on_run_end(self, scenario: "Scenario") -> None:
        if not self.enabled:
            return
        engine = scenario.engine
        self.registry.counter("engine.events_processed").inc(engine.events_processed)
        self.registry.gauge("scenario.simulated_time").set(engine.now)
        # Arrivals and completions that land after the last window boundary
        # were never seen by on_window — reconcile against the ledger so both
        # counters match the run's true totals.  Shed rows never counted as
        # window arrivals (the window stats filter them), so they are
        # excluded here too.
        ledger = scenario.ledger
        admitted_rows = len(ledger) - int(
            np.count_nonzero(ledger.disposition == int(AdmissionDecision.SHED))
        )
        arrivals = self.registry.counter("scenario.arrivals")
        arrivals.inc(admitted_rows - arrivals.value)
        completed = scenario.ledger.num_completed
        self.registry.counter("scenario.completions").inc(completed - self._seen_completed)
        self._seen_completed = completed
        timeline = getattr(scenario.server, "fleet_timeline", None)
        if timeline:
            # Lazy import: repro.cluster imports repro.telemetry at module
            # load, so the cost gauge resolves its helper at run end only.
            from ..cluster.autoscale import node_hours

            self.registry.gauge("cluster.node_hours").set(
                node_hours(timeline, horizon=float(engine.now))
            )
