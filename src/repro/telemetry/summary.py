"""Human-readable run summaries of a telemetry facade's instruments.

:class:`TelemetrySummary` condenses a run's counters, gauges and histograms
into an aligned text table — what the experiments CLI prints under
``--telemetry``.  It is plain data built from a
:class:`~repro.telemetry.Telemetry` (and optionally the run's
:class:`~repro.simulation.SimulationResult` for the worker profile), so it
can ride pickles and reports without dragging the instruments along.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .core import Telemetry
from .metrics import Counter, Gauge, Histogram

__all__ = ["TelemetrySummary"]


def _fmt(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.6g}"
    return str(value)


@dataclass(frozen=True)
class TelemetrySummary:
    """A run's instruments flattened into printable rows.

    ``counters`` are ``(name, value)``; ``gauges`` are ``(name, last_value,
    num_samples)``; ``histograms`` are ``(name, count, mean, min, max)``;
    ``profile`` is the result's wall-clock worker profile as ``(key, value)``
    strings, empty when the run recorded none.
    """

    counters: tuple[tuple[str, int], ...] = ()
    gauges: tuple[tuple[str, float, int], ...] = ()
    histograms: tuple[tuple[str, int, float, float, float], ...] = ()
    profile: tuple[tuple[str, str], ...] = field(default=())

    @classmethod
    def from_run(cls, telemetry: Telemetry, result=None) -> "TelemetrySummary":
        """Summarise a telemetry facade (plus a result's worker profile)."""
        counters: list[tuple[str, int]] = []
        gauges: list[tuple[str, float, int]] = []
        histograms: list[tuple[str, int, float, float, float]] = []
        for instrument in telemetry.registry.instruments():
            if isinstance(instrument, Counter):
                counters.append((instrument.name, instrument.value))
            elif isinstance(instrument, Gauge):
                gauges.append((instrument.name, instrument.value, len(instrument.series)))
            elif isinstance(instrument, Histogram):
                histograms.append(
                    (
                        instrument.name,
                        instrument.count,
                        instrument.mean,
                        instrument.min if instrument.count else float("nan"),
                        instrument.max if instrument.count else float("nan"),
                    )
                )
        profile: list[tuple[str, str]] = []
        worker_profile = getattr(result, "worker_profile", None)
        if worker_profile:
            profile = [(key, _fmt(value)) for key, value in sorted(worker_profile.items())]
        return cls(
            counters=tuple(counters),
            gauges=tuple(gauges),
            histograms=tuple(histograms),
            profile=tuple(profile),
        )

    def _section(self, title: str, header: list[str], rows: list[list[str]]) -> list[str]:
        if not rows:
            return []
        widths = [
            max(len(header[col]), max(len(row[col]) for row in rows))
            for col in range(len(header))
        ]
        lines = [title]
        lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append("  " + "  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return lines

    def to_text(self) -> str:
        """The aligned table the experiments CLI prints for ``--telemetry``."""
        lines: list[str] = ["# telemetry summary"]
        lines.extend(
            self._section(
                "counters",
                ["name", "value"],
                [[name, str(value)] for name, value in self.counters],
            )
        )
        lines.extend(
            self._section(
                "gauges",
                ["name", "last", "samples"],
                [[name, _fmt(last), str(n)] for name, last, n in self.gauges],
            )
        )
        lines.extend(
            self._section(
                "histograms",
                ["name", "count", "mean", "min", "max"],
                [
                    [name, str(count), _fmt(mean), _fmt(lo), _fmt(hi)]
                    for name, count, mean, lo, hi in self.histograms
                ],
            )
        )
        lines.extend(
            self._section(
                "worker profile",
                ["key", "value"],
                [[key, value] for key, value in self.profile],
            )
        )
        if len(lines) == 1:
            lines.append("(no instruments recorded)")
        return "\n".join(lines)
