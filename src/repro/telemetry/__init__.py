"""Observability for the simulation stack: metrics, tracing, health, logging.

The package is injectable end to end: a :class:`Telemetry` facade passed to
a :class:`~repro.simulation.Scenario` collects simulated-time metrics
(:class:`MetricsRegistry`) and the marks the exporters consume; request
traces (:func:`chrome_trace_events`) and per-window cluster health
(:func:`build_health_snapshots`) are derived from run results afterwards.
Without a facade — the default — the instrumented call sites reduce to one
``is not None`` check and every aggregate stays bit-identical.

Nothing here imports :mod:`repro.simulation` or :mod:`repro.cluster` at
module level (the simulation layer imports *us*); the health and tracing
builders import the helpers they need lazily.
"""

from .core import Telemetry
from .health import ClusterHealthSnapshot, build_health_snapshots
from .log import ROOT_LOGGER, configure_logging, get_logger, log_event
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .summary import TelemetrySummary
from .tracing import chrome_trace_events, sample_mask, trace_seed, write_chrome_trace

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetrySummary",
    "ClusterHealthSnapshot",
    "build_health_snapshots",
    "chrome_trace_events",
    "sample_mask",
    "trace_seed",
    "write_chrome_trace",
    "ROOT_LOGGER",
    "configure_logging",
    "get_logger",
    "log_event",
]
