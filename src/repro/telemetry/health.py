"""Per-window cluster health: the observed signal for future control loops.

A :class:`ClusterHealthSnapshot` condenses one measurement window of a
clustered run into the per-node facts an admission controller or autoscaler
would act on: how much of the window each node was live, what total rate it
was assigned, how utilised that left it, and (when the run collected
telemetry) its request backlog at the window edge.

:func:`build_health_snapshots` derives the series from run artefacts — the
fleet timeline, the recorded per-node rate shares, and the telemetry
facade's backlog marks — using the *same* window-edge helpers as
:class:`~repro.simulation.WindowedMonitor`, so snapshot availability agrees
exactly with :meth:`~repro.simulation.WindowedMonitor.availability_series`
and the slowdown samples line up window for window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError

__all__ = ["ClusterHealthSnapshot", "build_health_snapshots"]


@dataclass(frozen=True)
class ClusterHealthSnapshot:
    """One measurement window's per-node health of a clustered run.

    ``availability`` is each node's live fraction of the window (the
    monitor's availability semantics); ``assigned_rates`` the time-averaged
    total rate share each node held; ``utilisation`` the ratio of assigned
    rate to time-averaged capacity; ``backlogs`` the per-node pending
    request counts sampled at the window boundary (``None`` when the run
    collected no telemetry marks).
    """

    window_index: int
    start: float
    end: float
    availability: tuple[float, ...]
    assigned_rates: tuple[float, ...]
    utilisation: tuple[float, ...]
    backlogs: tuple[int, ...] | None = None

    @property
    def num_nodes(self) -> int:
        return len(self.availability)

    @property
    def live_fraction(self) -> float:
        """Mean node availability over the window (1.0 = fully live fleet)."""
        return float(sum(self.availability)) / len(self.availability)

    def to_row(self) -> dict:
        """A flat JSON-serialisable dict (one row of a health JSONL stream)."""
        row: dict = {
            "window": self.window_index,
            "start": self.start,
            "end": self.end,
            "availability": list(self.availability),
            "assigned_rates": list(self.assigned_rates),
            "utilisation": list(self.utilisation),
        }
        if self.backlogs is not None:
            row["backlogs"] = list(self.backlogs)
        return row


def build_health_snapshots(
    result,
    *,
    num_windows: int | None = None,
    telemetry=None,
    backlog_marks=None,
) -> list[ClusterHealthSnapshot]:
    """Per-window :class:`ClusterHealthSnapshot` series for a clustered run.

    ``result`` must carry a ``fleet_timeline`` (every cluster run does).
    ``num_windows`` defaults to every full measurement window between
    warm-up and horizon, matching
    :meth:`~repro.simulation.SimulationResult.per_node_availability`.
    Backlog columns come from ``backlog_marks`` — ``(sim_time, per-node
    counts)`` pairs — or from ``telemetry.node_backlog_marks``; without
    either the snapshots carry ``backlogs=None``.
    """
    # Imported lazily: repro.simulation imports repro.telemetry types, so a
    # top-level import here would close an import cycle.
    from ..simulation.monitor import fleet_availability, window_span, windowed_time_average

    timeline = result.fleet_timeline
    if not timeline:
        raise ParameterError(
            "health snapshots need a clustered run (the result has no fleet timeline)"
        )
    config = result.config
    warmup, window = float(config.warmup), float(config.window)
    if num_windows is None:
        # Same jitter epsilon as SimulationResult.per_node_availability: the
        # scaled horizon arithmetic can land a hair below the exact count.
        num_windows = int((config.horizon - config.warmup) / config.window + 1e-9)
    availability = fleet_availability(
        timeline, warmup=warmup, window=window, num_windows=num_windows
    )
    num_nodes = availability.shape[1] if num_windows else len(timeline[0][1])

    share_history = getattr(result, "node_share_history", None)
    if share_history:
        entries = [
            (time, [float(sum(node_share)) for node_share in shares])
            for time, shares in share_history
        ]
        assigned = windowed_time_average(
            entries, warmup=warmup, window=window, num_windows=num_windows
        )
    else:
        assigned = np.zeros((num_windows, num_nodes))
    capacity_entries = [
        (time, [1.0 if cap is None else float(cap) for cap in capacities])
        for time, _states, capacities in timeline
    ]
    capacities = windowed_time_average(
        capacity_entries, warmup=warmup, window=window, num_windows=num_windows
    )
    utilisation = np.divide(
        assigned,
        capacities,
        out=np.zeros_like(assigned),
        where=capacities > 0.0,
    )

    if backlog_marks is None and telemetry is not None:
        backlog_marks = telemetry.node_backlog_marks
    marks = sorted(backlog_marks, key=lambda mark: mark[0]) if backlog_marks else []
    mark_times = [mark[0] for mark in marks]

    snapshots: list[ClusterHealthSnapshot] = []
    for index in range(num_windows):
        start, end = window_span(index, warmup=warmup, window=window)
        backlogs = None
        if marks:
            # The latest backlog sample at or before the window's end edge
            # (window boundaries land exactly on the marks up to float
            # jitter, hence the same 1e-9 tolerance the engine uses).
            position = int(np.searchsorted(mark_times, end + 1e-9)) - 1
            if position >= 0:
                backlogs = tuple(int(b) for b in marks[position][1])
        snapshots.append(
            ClusterHealthSnapshot(
                window_index=index,
                start=start,
                end=end,
                availability=tuple(float(a) for a in availability[index]),
                assigned_rates=tuple(float(r) for r in assigned[index]),
                utilisation=tuple(float(u) for u in utilisation[index]),
                backlogs=backlogs,
            )
        )
    return snapshots
