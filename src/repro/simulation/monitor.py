"""Measurement configuration and windowed monitors.

The paper's measurement protocol (Sec. 4.1): warm the simulator up for
10,000 time units, measure class slowdowns every 1,000 time units until
60,000 time units, and average the per-window statistics.  A *time unit* is
the processing time of an average-size request, so all durations here are
expressed in multiples of the workload's mean service time.

:class:`MeasurementConfig` captures the protocol; :class:`WindowedMonitor`
collects per-window, per-class slowdown statistics as requests complete.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..validation import require_non_negative, require_positive
from .ledger import RequestLedger
from .trace import RequestRecord

__all__ = [
    "MeasurementConfig",
    "WindowSample",
    "WindowedMonitor",
    "window_index_of",
    "window_span",
    "windowed_time_average",
    "fleet_availability",
]


def window_index_of(time: float, *, warmup: float, window: float) -> int:
    """The measurement-window index containing ``time``.

    Windows are half-open ``[warmup + i * window, warmup + (i + 1) * window)``:
    an event landing exactly on a window edge belongs to the *later* window.
    Every window-attribution site (streaming monitor, vectorised ledger pass,
    availability matrices) shares this floor-division so the same completion
    can never land in different windows depending on the code path.
    """
    return int((time - warmup) // window)


def window_span(index: int, *, warmup: float, window: float) -> tuple[float, float]:
    """The ``[start, end)`` edges of measurement window ``index``.

    Inverse of :func:`window_index_of` up to the half-open convention:
    ``window_index_of(start) == index`` and ``window_index_of(end)`` is the
    next window.
    """
    start = warmup + index * window
    return start, start + window


def windowed_time_average(
    entries, *, warmup: float, window: float, num_windows: int
) -> np.ndarray:
    """Per-window time averages of a piecewise-constant vector series.

    ``entries`` is a sequence of ``(time, values)`` pairs — each vector holds
    from its time until the next entry's (the last holds forever).  Returns a
    ``(num_windows, len(values))`` matrix whose row ``i`` is the series'
    time average over :func:`window_span`'s window ``i``.  This is the one
    window-overlap computation behind :func:`fleet_availability` and the
    cluster health snapshots' assigned-rate/capacity columns.
    """
    require_non_negative(warmup, "warmup")
    require_positive(window, "window")
    if num_windows < 0:
        raise ParameterError(f"num_windows must be >= 0, got {num_windows}")
    entries = sorted(entries, key=lambda entry: entry[0])
    if not entries:
        raise ParameterError("a piecewise-constant series needs at least one entry")
    width = len(entries[0][1])
    out = np.zeros((num_windows, width), dtype=float)
    for index, (start, values) in enumerate(entries):
        if len(values) != width:
            raise ParameterError("series entries disagree on the vector length")
        end = entries[index + 1][0] if index + 1 < len(entries) else float("inf")
        values = np.asarray(values, dtype=float)
        if not values.any():
            continue
        for w in range(num_windows):
            window_start, window_end = window_span(w, warmup=warmup, window=window)
            overlap = min(end, window_end) - max(start, window_start)
            if overlap > 0.0:
                out[w] += values * (overlap / window)
    return out


@dataclass(frozen=True)
class MeasurementConfig:
    """Warm-up, horizon and window lengths, in "time units" (mean service times).

    Attributes mirror Sec. 4.1: ``warmup=10_000``, ``horizon=60_000``,
    ``window=1_000``, estimation history of 5 windows, 100 replications.
    Scaled-down defaults are used by the test-suite and benches; the full
    paper protocol is available via :meth:`paper`.
    """

    warmup: float = 2_000.0
    horizon: float = 12_000.0
    window: float = 1_000.0
    estimation_history: int = 5
    replications: int = 5

    def __post_init__(self) -> None:
        require_non_negative(self.warmup, "warmup")
        require_positive(self.horizon, "horizon")
        require_positive(self.window, "window")
        if self.horizon <= self.warmup:
            raise ParameterError("horizon must exceed warmup")
        if self.estimation_history <= 0:
            raise ParameterError("estimation_history must be > 0")
        if self.replications <= 0:
            raise ParameterError("replications must be > 0")

    @classmethod
    def paper(cls) -> "MeasurementConfig":
        """The full protocol of Sec. 4.1 (expensive: ~60k time units x 100 runs)."""
        return cls(
            warmup=10_000.0,
            horizon=60_000.0,
            window=1_000.0,
            estimation_history=5,
            replications=100,
        )

    @classmethod
    def quick(cls) -> "MeasurementConfig":
        """A fast configuration for unit tests and smoke benches."""
        return cls(warmup=500.0, horizon=3_000.0, window=250.0, replications=3)

    @property
    def measurement_duration(self) -> float:
        return self.horizon - self.warmup

    def scaled_to_time_units(self, time_unit: float) -> "MeasurementConfig":
        """Convert from abstract time units into simulated seconds.

        ``time_unit`` is the mean full-rate service time of the workload; the
        returned config expresses warm-up, horizon and window in the same
        units as the service-time distribution, which is what the simulator
        consumes.
        """
        require_positive(time_unit, "time_unit")
        return MeasurementConfig(
            warmup=self.warmup * time_unit,
            horizon=self.horizon * time_unit,
            window=self.window * time_unit,
            estimation_history=self.estimation_history,
            replications=self.replications,
        )


@dataclass(frozen=True)
class WindowSample:
    """Per-class mean slowdowns measured over one window."""

    start: float
    end: float
    mean_slowdowns: tuple[float, ...]
    counts: tuple[int, ...]

    def ratio(self, numerator: int, denominator: int) -> float:
        """Slowdown ratio between two classes in this window (NaN when undefined)."""
        num = self.mean_slowdowns[numerator]
        den = self.mean_slowdowns[denominator]
        if math.isnan(num) or math.isnan(den) or den == 0.0:
            return float("nan")
        return num / den


class WindowedMonitor:
    """Per-class slowdown statistics, window by window.

    Completed requests are attributed to the window containing their
    completion time; requests completing before ``warmup`` are discarded, as
    in the paper.  Windows between the first and last observed completion
    that saw no completions at all are still emitted (all-NaN means, zero
    counts), so the per-window series of different classes stay time-aligned
    even when a quiet class skips a window.

    Two modes:

    * **ledger-backed** (every scenario run): constructed with the run's
      :class:`~repro.simulation.ledger.RequestLedger`; nothing is recorded
      per completion, and :meth:`samples` computes all per-window per-class
      statistics in one vectorised pass over the completion columns.
    * **streaming**: without a ledger, feed completions one at a time
      through :meth:`record`, exactly as before the refactor.
    """

    def __init__(
        self,
        num_classes: int,
        *,
        warmup: float,
        window: float,
        ledger: "RequestLedger | None" = None,
    ) -> None:
        if num_classes <= 0:
            raise ParameterError("num_classes must be > 0")
        require_non_negative(warmup, "warmup")
        require_positive(window, "window")
        self.num_classes = int(num_classes)
        self.warmup = float(warmup)
        self.window = float(window)
        self._ledger = ledger
        self._buckets: dict[int, list[list[float]]] = {}

    @property
    def ledger(self):
        """The backing ledger, if this monitor finalises from one."""
        return self._ledger

    def record(self, record: RequestRecord) -> None:
        """Attribute one completion to its window (streaming mode only)."""
        if self._ledger is not None:
            raise ParameterError(
                "a ledger-backed monitor derives its samples from the ledger; "
                "record() is only for streaming monitors built without one"
            )
        if record.completion_time < self.warmup:
            return
        index = window_index_of(record.completion_time, warmup=self.warmup, window=self.window)
        bucket = self._buckets.setdefault(index, [[] for _ in range(self.num_classes)])
        bucket[record.class_index].append(record.slowdown)

    def _sample_for(self, index: int, per_class_values) -> WindowSample:
        means = tuple(
            float(np.mean(vals)) if len(vals) else float("nan") for vals in per_class_values
        )
        counts = tuple(len(vals) for vals in per_class_values)
        start, end = window_span(index, warmup=self.warmup, window=self.window)
        return WindowSample(start=start, end=end, mean_slowdowns=means, counts=counts)

    def _ledger_samples(self) -> list[WindowSample]:
        """One vectorised pass over the completion columns.

        The completion log is in completion order and simulated time is
        monotone, so the per-completion window indices are already sorted:
        ``np.searchsorted`` finds every window boundary at once, and each
        window's per-class values are contiguous slices.
        """
        ledger = self._ledger
        ids = ledger.completed_ids
        completion = ledger.completion_time[ids]
        keep = completion >= self.warmup
        ids = ids[keep]
        if ids.size == 0:
            return []
        indices = ((completion[keep] - self.warmup) // self.window).astype(np.int64)
        if np.any(np.diff(indices) < 0):
            # Engine-driven completions are logged in time order, but rows
            # interned with pre-set completion times can break it; a stable
            # sort restores window order while preserving the log order
            # within each window (what the streaming path would have seen).
            order = np.argsort(indices, kind="stable")
            ids = ids[order]
            indices = indices[order]
        classes = ledger.class_index[ids]
        slowdowns = ledger.slowdowns(ids)
        first, last = int(indices[0]), int(indices[-1])
        edges = np.searchsorted(indices, np.arange(first, last + 2))
        out: list[WindowSample] = []
        for offset, index in enumerate(range(first, last + 1)):
            lo, hi = edges[offset], edges[offset + 1]
            window_classes = classes[lo:hi]
            window_slowdowns = slowdowns[lo:hi]
            out.append(
                self._sample_for(
                    index,
                    [window_slowdowns[window_classes == c] for c in range(self.num_classes)],
                )
            )
        return out

    def samples(self) -> list[WindowSample]:
        """Per-window summaries in time order (empty windows included)."""
        if self._ledger is not None:
            return self._ledger_samples()
        if not self._buckets:
            return []
        empty = [[] for _ in range(self.num_classes)]
        return [
            self._sample_for(index, self._buckets.get(index, empty))
            for index in range(min(self._buckets), max(self._buckets) + 1)
        ]

    def ratio_series(self, numerator: int, denominator: int) -> np.ndarray:
        """Per-window slowdown ratios between two classes (NaNs dropped)."""
        ratios = [s.ratio(numerator, denominator) for s in self.samples()]
        arr = np.asarray(ratios, dtype=float)
        return arr[~np.isnan(arr)]

    def availability_series(self, timeline, num_windows: int) -> np.ndarray:
        """Per-window, per-node live fractions aligned with this monitor's windows.

        ``timeline`` is a cluster's
        :attr:`~repro.cluster.ClusterServerModel.fleet_timeline`; window
        index 0 spans ``[warmup, warmup + window)``, exactly like
        :meth:`samples` (map a :class:`WindowSample` to its index via
        ``round((sample.start - warmup) / window)`` — ``round``, not floor:
        window starts are ``warmup + k * window`` up to float jitter, and a
        hair-below start must not land in the previous window).  Reading the slowdown
        ratio series against this matrix shows when differentiation error is
        the controller's fault and when the fleet simply had fewer nodes.
        """
        return fleet_availability(
            timeline, warmup=self.warmup, window=self.window, num_windows=num_windows
        )

    def per_class_window_means(self, *, drop_nan: bool = False) -> list[np.ndarray]:
        """For each class, the vector of its per-window mean slowdowns.

        By default the per-class arrays stay aligned window-by-window (NaN
        where a class completed no request in a window) so that ratio
        computations can pair them up; pass ``drop_nan=True`` for standalone
        per-class statistics.
        """
        samples = self.samples()
        out = []
        for c in range(self.num_classes):
            vals = np.asarray([s.mean_slowdowns[c] for s in samples], dtype=float)
            out.append(vals[~np.isnan(vals)] if drop_nan else vals)
        return out


def fleet_availability(timeline, *, warmup: float, window: float, num_windows: int) -> np.ndarray:
    """Fraction of each measurement window each node spent *live*.

    ``timeline`` is a piecewise-constant fleet history — a sequence of
    ``(time, node_states, capacities)`` entries as recorded by
    :attr:`repro.cluster.ClusterServerModel.fleet_timeline`, where each
    entry holds from its time until the next entry's.  States equal to
    ``"live"`` count as available; draining and down nodes do not (a
    draining node still serves its old queue but accepts nothing new, so it
    adds no dispatchable capacity).

    Returns a ``(num_windows, num_nodes)`` float matrix; window index ``i``
    spans ``[warmup + i * window, warmup + (i + 1) * window)``.  A thin
    wrapper over :func:`windowed_time_average` with the live indicator as
    the piecewise-constant vector, so window-edge semantics cannot drift
    from the monitor's.
    """
    entries = list(timeline)
    if not entries:
        raise ParameterError("fleet timeline must have at least one entry")
    num_nodes = len(entries[0][1])
    for _time, states, _capacities in entries:
        if len(states) != num_nodes:
            raise ParameterError("fleet timeline entries disagree on the node count")
    live_series = [
        (time, [1.0 if state == "live" else 0.0 for state in states])
        for time, states, _capacities in entries
    ]
    return windowed_time_average(
        live_series, warmup=warmup, window=window, num_windows=num_windows
    )
