"""Request records flowing through the simulated server."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["Request"]


@dataclass
class Request:
    """One simulated request.

    ``size`` is the service demand at *full server rate* (so the actual
    service duration on a task server of rate ``r`` is ``size / r``).  The
    slowdown uses the paper's definition: queueing delay divided by the
    request's own full-rate service time.
    """

    request_id: int
    class_index: int
    arrival_time: float
    size: float
    service_start_time: float = math.nan
    completion_time: float = math.nan
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start_service(self, time: float) -> None:
        if not math.isnan(self.service_start_time):
            raise SimulationError(f"request {self.request_id} started service twice")
        if time < self.arrival_time - 1e-12:
            raise SimulationError(
                f"request {self.request_id} started service before arriving"
            )
        self.service_start_time = time

    def complete(self, time: float) -> None:
        if math.isnan(self.service_start_time):
            raise SimulationError(
                f"request {self.request_id} completed without starting service"
            )
        if not math.isnan(self.completion_time):
            raise SimulationError(f"request {self.request_id} completed twice")
        if time < self.service_start_time - 1e-12:
            raise SimulationError(
                f"request {self.request_id} completed before service started"
            )
        self.completion_time = time

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def is_complete(self) -> bool:
        return not math.isnan(self.completion_time)

    @property
    def waiting_time(self) -> float:
        """Queueing delay: time between arrival and the start of service."""
        return self.service_start_time - self.arrival_time

    @property
    def response_time(self) -> float:
        """Total sojourn time: completion minus arrival."""
        return self.completion_time - self.arrival_time

    @property
    def service_duration(self) -> float:
        """Actual time spent in service (reflects the task server's rate)."""
        return self.completion_time - self.service_start_time

    @property
    def slowdown(self) -> float:
        """The paper's slowdown: queueing delay over the request's service time.

        "Service time" is the time the request actually spends in service on
        its task server — for a server running at rate ``r`` this is
        ``size / r`` (Lemma 2 models exactly this scaled distribution), so a
        request served by a slower task server has both a longer delay and a
        longer service time.
        """
        return self.waiting_time / self.service_duration

    @property
    def demand_slowdown(self) -> float:
        """Queueing delay over the *full-rate* service demand ``size``.

        An alternative normalisation (delay per unit of intrinsic work),
        useful when comparing requests across task servers of different
        rates; the paper's figures use :attr:`slowdown`.
        """
        return self.waiting_time / self.size
