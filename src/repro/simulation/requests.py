"""Request views over the columnar ledger.

Since the ledger refactor, per-request state lives in the struct-of-arrays
:class:`~repro.simulation.ledger.RequestLedger` and the simulation hot path
moves *integer row ids*, never objects.  :class:`Request` survives as a thin
lazy view over one ledger row: construct one standalone (it allocates a
private single-row ledger) or obtain one with ``ledger.view(rid)``; either
way every attribute read and lifecycle call goes straight through to the
ledger columns, so views and ids always agree.
"""

from __future__ import annotations

import math

from .ledger import RequestLedger

__all__ = ["Request"]


class Request:
    """One simulated request, viewed through its ledger row.

    ``size`` is the service demand at *full server rate* (so the actual
    service duration on a task server of rate ``r`` is ``size / r``).  The
    slowdown uses the paper's definition: queueing delay divided by the
    request's own actual service time.

    ``request_id`` is an external label (defaults to the row id when views
    are materialised from a scenario's ledger); the identity used by the
    simulation is the ledger row.
    """

    __slots__ = ("_ledger", "_row")

    def __init__(
        self,
        request_id: int = 0,
        class_index: int = 0,
        arrival_time: float = 0.0,
        size: float = 1.0,
        service_start_time: float = math.nan,
        completion_time: float = math.nan,
        extra: dict | None = None,
    ) -> None:
        ledger = RequestLedger(capacity=1)
        row = ledger.append(class_index, arrival_time, size, request_id=request_id)
        # Mirror the old mutable-dataclass semantics: explicit lifecycle
        # values are taken verbatim, without invariant re-checks.
        ledger.adopt_lifecycle(row, service_start_time, completion_time)
        if extra:
            ledger.extra(row).update(extra)
        self._ledger = ledger
        self._row = row

    # ------------------------------------------------------------------ #
    # View construction and rebinding
    # ------------------------------------------------------------------ #
    @classmethod
    def view(cls, ledger: RequestLedger, row: int) -> "Request":
        """A view over an existing ledger row (no copying)."""
        self = object.__new__(cls)
        self._ledger = ledger
        self._row = int(row)
        return self

    def _rebind(self, ledger: RequestLedger, row: int) -> None:
        """Point this view at another ledger's row (used by ``intern``)."""
        self._ledger = ledger
        self._row = int(row)

    @property
    def ledger(self) -> RequestLedger:
        return self._ledger

    @property
    def row(self) -> int:
        """The ledger row id backing this view."""
        return self._row

    # ------------------------------------------------------------------ #
    # Column attributes
    # ------------------------------------------------------------------ #
    @property
    def request_id(self) -> int:
        return self._ledger.label_of(self._row)

    @property
    def class_index(self) -> int:
        return self._ledger.class_of(self._row)

    @property
    def arrival_time(self) -> float:
        return self._ledger.arrival_of(self._row)

    @property
    def size(self) -> float:
        return self._ledger.size_of(self._row)

    @property
    def service_start_time(self) -> float:
        return self._ledger.start_of(self._row)

    @property
    def completion_time(self) -> float:
        return self._ledger.completion_of(self._row)

    @property
    def extra(self) -> dict:
        """Per-request side-channel dict (created lazily in the ledger)."""
        return self._ledger.extra(self._row)

    # ------------------------------------------------------------------ #
    # Lifecycle (delegates to the ledger's single source of invariants)
    # ------------------------------------------------------------------ #
    def start_service(self, time: float) -> None:
        self._ledger.start_service(self._row, time)

    def complete(self, time: float) -> None:
        self._ledger.complete(self._row, time)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def is_complete(self) -> bool:
        return self._ledger.is_complete(self._row)

    @property
    def waiting_time(self) -> float:
        """Queueing delay: time between arrival and the start of service."""
        return self.service_start_time - self.arrival_time

    @property
    def response_time(self) -> float:
        """Total sojourn time: completion minus arrival."""
        return self.completion_time - self.arrival_time

    @property
    def service_duration(self) -> float:
        """Actual time spent in service (reflects the task server's rate)."""
        return self.completion_time - self.service_start_time

    @property
    def slowdown(self) -> float:
        """The paper's slowdown: queueing delay over the request's service time.

        "Service time" is the time the request actually spends in service on
        its task server — for a server running at rate ``r`` this is
        ``size / r`` (Lemma 2 models exactly this scaled distribution), so a
        request served by a slower task server has both a longer delay and a
        longer service time.
        """
        return self.waiting_time / self.service_duration

    @property
    def demand_slowdown(self) -> float:
        """Queueing delay over the *full-rate* service demand ``size``.

        An alternative normalisation (delay per unit of intrinsic work),
        useful when comparing requests across task servers of different
        rates; the paper's figures use :attr:`slowdown`.
        """
        return self.waiting_time / self.size

    # ------------------------------------------------------------------ #
    # Object protocol (parity with the old dataclass)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _times_equal(a: float, b: float) -> bool:
        """Timestamp equality where NaN == NaN (a pending field matches a
        pending field, as the old dataclass's identity-shortcut gave)."""
        return a == b or (math.isnan(a) and math.isnan(b))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Request):
            return NotImplemented
        return (
            self.request_id == other.request_id
            and self.class_index == other.class_index
            and self.arrival_time == other.arrival_time
            and self.size == other.size
            and self._times_equal(self.service_start_time, other.service_start_time)
            and self._times_equal(self.completion_time, other.completion_time)
            # Side-channel payloads; an empty dict equals an untouched slot,
            # so merely reading ``.extra`` (which creates one lazily) never
            # flips an equality.
            and (self._ledger._extra.get(self._row) or None)
            == (other._ledger._extra.get(other._row) or None)
        )

    __hash__ = None  # mutable view, like the old (unfrozen) dataclass

    def __repr__(self) -> str:
        return (
            f"Request(request_id={self.request_id}, class_index={self.class_index}, "
            f"arrival_time={self.arrival_time}, size={self.size}, "
            f"service_start_time={self.service_start_time}, "
            f"completion_time={self.completion_time})"
        )
