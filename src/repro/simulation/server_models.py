"""Pluggable server models: how allocated rates are realised on hardware.

A :class:`ServerModel` is the serving substrate of a
:class:`~repro.simulation.scenario.Scenario`.  The scenario owns everything
that is common to every PSD simulation — request sources, measurement,
estimation windows, the controller — and delegates to the server model the
one thing that differs between the paper's idealised analysis and a real
deployment: *how* requests are served once the controller has decided the
per-class processing rates.

Since the ledger refactor the request lifecycle is columnar: the scenario
owns a :class:`~repro.simulation.ledger.RequestLedger`, hands it to the
model at :meth:`ServerModel.bind`, and then submits *integer row ids*.  The
model serves ids (reading sizes/classes from the ledger, writing lifecycle
timestamps into it) and hands each completed id back through
:meth:`ServerModel.deliver`.  Standalone :class:`Request` views are still
accepted by :meth:`submit` — they are interned into the model's ledger — so
object-style call sites (tests, notebooks) keep working.

Two implementations are provided:

* :class:`RateScalableServers` — the paper's Fig. 1 model: one rate-scalable
  FCFS task server per class, each running at exactly the allocated rate
  (the fluid idealisation behind Eq. 17).
* :class:`SharedProcessorServer` — a realistic variant: one full-speed
  processor and a proportional-share scheduler from
  :mod:`repro.scheduling` (WFQ, SFQ, stride, lottery, WRR, priority, ...)
  whose weights track the allocated rates.

Adding a new model (a multi-server cluster, an async backend, a cache in
front of the processor) means subclassing :class:`ServerModel` and
implementing four methods; every scenario, experiment driver and replication
runner then works with it unchanged.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence

import numpy as np

from ..errors import SimulationError
from ..scheduling.base import Scheduler, WeightedScheduler
from ..types import TrafficClass
from .engine import SimulationEngine
from .ledger import RequestLedger
from .requests import Request
from .task_server import FcfsTaskServer

__all__ = ["ServerModel", "RateScalableServers", "SharedProcessorServer"]

#: Weights pushed into a :class:`WeightedScheduler` are floored at this value
#: so that a class with zero allocated rate (no estimated traffic) keeps the
#: fair-queueing tag arithmetic well defined.
WEIGHT_FLOOR = 1e-9


class ServerModel(abc.ABC):
    """Protocol for the serving substrate of a scenario.

    Lifecycle: the scenario constructs the model, calls :meth:`bind` exactly
    once (handing over the engine, the traffic classes, a completion callback
    and the run's request ledger), then immediately pushes the controller's
    initial rate vector via :meth:`apply_rates`.  During the run the scenario
    calls :meth:`submit` with the ledger row id of every admitted request and
    :meth:`apply_rates` after every estimation window; the model must invoke
    the ``deliver`` callback with each id once the request has been completed
    (``ledger.complete`` must already have been called for it).

    Capacity: every model advertises :attr:`capacity` — the maximum total
    processing rate the underlying hardware can sustain, in the same
    normalised units as the controller's rate allocation (the single unit
    server of the paper has capacity 1).  ``None`` means *unconstrained* (the
    idealised fluid model of the paper, which realises any allocation
    exactly).  Heterogeneous clusters read the member capacities to make
    capacity-aware dispatch and rate-partitioning decisions.
    """

    #: Maximum sustainable total processing rate (``None`` = unconstrained).
    capacity: float | None = None

    #: Whether the model can run with ``capacity=None`` (the paper's
    #: unconstrained idealisation).  Models whose service arithmetic divides
    #: by the capacity — a real processor — set this ``False`` so a fleet
    #: ``set_capacity`` event cannot silently hand them ``None``.
    supports_unconstrained: bool = True

    #: Whether the model implements the batched hot path (block submission
    #: via :meth:`submit_batch` plus bulk completion via :meth:`drain`).
    #: Models whose behaviour depends on the engine-time interleaving of
    #: completions with other events — e.g. a cluster whose dispatch policy
    #: reads pending counts — keep this ``False`` and stay per-event.
    supports_batched: bool = False

    def __init__(self) -> None:
        self.engine: SimulationEngine | None = None
        self.classes: tuple[TrafficClass, ...] = ()
        self.ledger: RequestLedger | None = None
        self._deliver: Callable[[int], None] | None = None
        self.batched = False
        #: Optional :class:`repro.telemetry.Telemetry` facade; ``None`` (the
        #: default) keeps every observation site a single comparison.
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        """Install the scenario's telemetry facade (call before :meth:`bind`).

        Models feed their drain/fleet observations through it; composite
        models (the cluster) propagate the facade to their members at bind
        time.
        """
        self.telemetry = telemetry

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def bind(
        self,
        engine: SimulationEngine,
        classes: Sequence[TrafficClass],
        deliver: Callable[[int], None],
        *,
        ledger: RequestLedger | None = None,
        batched: bool = False,
    ) -> None:
        """Attach the model to a scenario's engine, ledger and completion sink.

        ``ledger`` is the scenario's columnar request store; a model bound
        without one (standalone use in tests) allocates a private ledger so
        interned :class:`Request` submissions still work.  ``batched=True``
        switches the model to the block hot path (:meth:`submit_batch` +
        :meth:`drain`); only models advertising :attr:`supports_batched`
        accept it.
        """
        if self.engine is not None:
            raise SimulationError(
                "server model is already bound to a scenario; build a fresh "
                "model instance per scenario (they hold per-run state)"
            )
        if not classes:
            raise SimulationError("classes must be non-empty")
        if batched and not self.supports_batched:
            raise SimulationError(
                f"{type(self).__name__} does not support the batched hot path"
            )
        self.engine = engine
        self.classes = tuple(classes)
        self.ledger = ledger if ledger is not None else RequestLedger(len(self.classes))
        self._deliver = deliver
        self.batched = bool(batched)
        self._on_bind()

    def resolve(self, request: int | Request) -> int:
        """Normalise a :meth:`submit` argument to a ledger row id.

        Integer ids pass through; a standalone :class:`Request` view is
        interned into the model's ledger (copying its lifecycle columns and
        rebinding the view, so object and id stay in sync).
        """
        return self.ledger.resolve(request)

    def deliver(self, rid: int) -> None:
        """Hand a completed request's row id back to the scenario."""
        if self._deliver is None:
            raise SimulationError("server model delivered a request before bind()")
        self._deliver(rid)

    # ------------------------------------------------------------------ #
    # Model interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _on_bind(self) -> None:
        """Build per-run state (task servers, dispatch bookkeeping, ...)."""

    @abc.abstractmethod
    def submit(self, request: int | Request) -> None:
        """An admitted request arrived and must eventually be served."""

    @abc.abstractmethod
    def apply_rates(self, rates: Sequence[float]) -> None:
        """The controller (re-)allocated the per-class processing rates."""

    @abc.abstractmethod
    def backlogs(self) -> tuple[int, ...]:
        """Per-class queued request counts (excluding any in service)."""

    def submit_batch(self, rids: np.ndarray) -> None:
        """Submit a time-ordered block of ledger row ids.

        Batched models override this with a vectorised route; the default
        loops over :meth:`submit` so per-event models accept blocks from
        batched-agnostic call sites.
        """
        for rid in rids:
            self.submit(int(rid))

    def drain(self, now: float) -> np.ndarray:
        """Advance a batched model to ``now``; returns the completed row ids
        in global completion-time order (the caller logs them via
        ``ledger.log_completions``).  Only meaningful with ``batched=True``.
        """
        raise SimulationError(
            f"{type(self).__name__} was not bound with batched=True; nothing to drain"
        )

    def submit_one(self, rid: int, class_index: int, arrival: float, size: float) -> None:
        """Queue a single pre-gathered arrival on a batched model.

        The cluster's scalar dispatch walk pushes one decision at a time and
        hands over the already-gathered ledger columns, so batched models
        implement this as a plain buffer append — no per-request ledger
        lookups.  Only meaningful with ``batched=True``.
        """
        raise SimulationError(
            f"{type(self).__name__} was not bound with batched=True; nothing to push"
        )

    def next_completion_time(self) -> float:
        """When the batched model's next completion would occur (``inf`` if
        idle or frozen) — the timestamp the next :meth:`drain` would emit
        first.  Callers interleaving several models' completion streams (the
        cluster walk) compare these heads to decide which model to drain.
        """
        return float("inf")

    def block_boundaries(self, start: float, end: float) -> tuple[float, ...]:
        """Instants strictly inside ``(start, end)`` where a pre-drawn
        arrival block must be cut so later arrivals are dispatched under
        updated model state (cluster fleet events).  Plain servers have
        none; composite models return their scheduled change points, sorted
        ascending and deduplicated.
        """
        return ()


class RateScalableServers(ServerModel):
    """The paper's idealised model: one rate-scalable task server per class.

    Each class owns a :class:`~repro.simulation.task_server.FcfsTaskServer`
    whose processing rate is set to the class's allocated rate; a rate change
    mid-service rescales the in-service request's remaining work, exactly as
    the fluid analysis of Eq. 17 assumes.  All task servers share the
    scenario's ledger, so queue entries are plain row ids.

    ``capacity`` bounds the total rate the node can actually deliver: when
    the assigned rates sum past it, every class's effective rate is scaled
    down by ``capacity / sum(rates)`` — the node serves at its physical
    speed, proportionally shared, exactly as an over-subscribed processor
    would.  Rates within capacity are realised verbatim (bit-identical to an
    unconstrained node), so ``capacity=None`` (the default) reproduces the
    paper's idealised server and a homogeneous cluster of adequately sized
    nodes behaves identically with and without declared capacities.
    """

    supports_batched = True

    def __init__(self, *, capacity: float | None = None) -> None:
        super().__init__()
        if capacity is not None and capacity <= 0.0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        self.capacity = None if capacity is None else float(capacity)
        self.servers: list[FcfsTaskServer] = []

    def _on_bind(self) -> None:
        self.servers = [
            FcfsTaskServer(
                self.engine,
                i,
                0.0,
                ledger=self.ledger,
                on_completion=self.deliver,
                batched=self.batched,
            )
            for i in range(self.num_classes)
        ]

    def submit(self, request: int | Request) -> None:
        rid = self.resolve(request)
        self.servers[self.ledger.class_of(rid)].submit(rid)

    def submit_batch(self, rids: np.ndarray) -> None:
        if not self.batched:
            super().submit_batch(rids)
            return
        classes = self.ledger.classes_of(rids)
        for index, server in enumerate(self.servers):
            block = rids[classes == index]
            if block.size:
                server.submit_batch(block)

    def submit_one(self, rid: int, class_index: int, arrival: float, size: float) -> None:
        self.servers[class_index].push(rid, arrival, size)

    def next_completion_time(self) -> float:
        # Plain loop, not a genexpr: the cluster walk re-evaluates this after
        # every push, so the generator frame would be pure overhead.
        best = float("inf")
        for server in self.servers:
            head = server.next_completion_time()
            if head < best:
                best = head
        return best

    def drain(self, now: float) -> np.ndarray:
        """Drain every class's task server and merge the runs by time.

        The merge is a stable argsort, so completions with equal timestamps
        keep class order — the same order the per-event path produces when
        the tied completion events were scheduled in class order (true for
        every workload whose classes are started in class order, e.g. the
        deterministic trace scenarios; for continuous workloads exact ties
        have probability zero).
        """
        live = []
        telemetry = self.telemetry
        for index, server in enumerate(self.servers):
            if server.in_service is None and server._pending_pos >= len(server._pending_rids):
                # Idle with nothing queued: no completions to emit and no
                # zero-rate freeze to materialise, so skip the call entirely
                # (the cluster walk drains one node per completion, and most
                # class servers are in exactly this state).
                continue
            run, run_times = server.drain(now)
            if run.size:
                if telemetry is not None:
                    telemetry.on_server_drain(index, int(run.size))
                live.append((run, run_times))
        if not live:
            return np.empty(0, dtype=np.int64)
        if len(live) == 1:
            # One contributing class: its run is already in time order (the
            # cluster walk's tiny drains land here almost every time).
            return live[0][0]
        rids = np.concatenate([r for r, _ in live])
        times = np.concatenate([t for _, t in live])
        return rids[np.argsort(times, kind="stable")]

    def apply_rates(self, rates: Sequence[float]) -> None:
        if len(rates) != len(self.servers):
            raise SimulationError(f"expected {len(self.servers)} rates, got {len(rates)}")
        if self.capacity is not None:
            total = sum(rates)
            if total > self.capacity:
                # Over-subscribed: the node serves at its physical speed,
                # shared in proportion to the assigned rates.  Rates within
                # capacity take the untouched fast path below, so adequately
                # provisioned nodes stay bit-identical to unconstrained ones.
                scale = self.capacity / total
                rates = [rate * scale for rate in rates]
        for server, rate in zip(self.servers, rates):
            server.set_rate(rate)

    def backlogs(self) -> tuple[int, ...]:
        return tuple(server.backlog for server in self.servers)


class SharedProcessorServer(ServerModel):
    """A single full-speed processor driven by a pluggable scheduler.

    A real multi-process server has one processor (of ``capacity``) that
    serves one request at a time; the allocated rates are realised by a
    proportional-share scheduler deciding, whenever the processor becomes
    free, which class's head-of-line request runs next.  Service is
    non-preemptive and always happens at full speed, mirroring
    packet-by-packet fair queueing.  Any :class:`repro.scheduling.Scheduler`
    plugs in; for :class:`~repro.scheduling.base.WeightedScheduler` policies
    the weights are updated to the allocated rates after every estimation
    window (floored at ``WEIGHT_FLOOR``).  Scheduler job payloads are ledger
    row ids.

    ``capacity`` here is the processor's physical speed — the same "maximum
    sustainable total rate" every :class:`ServerModel` advertises, just
    always binding because a real processor cannot scale with the allocation.
    """

    supports_unconstrained = False
    supports_batched = True

    def __init__(self, scheduler: Scheduler, *, capacity: float = 1.0) -> None:
        super().__init__()
        if capacity <= 0.0:
            raise SimulationError("capacity must be > 0")
        self.scheduler = scheduler
        self.capacity = float(capacity)
        self._in_service: int | None = None
        self._completion_time = 0.0
        # Batched mode: arrivals not yet handed to the scheduler, consumed
        # from ``_pending_pos`` as the drain's virtual clock advances.
        # Plain Python lists so the cluster walk's one-at-a-time pushes are
        # O(1) appends (the drain replay reads scalars regardless).
        self._pending_rids: list[int] = []
        self._pending_times: list[float] = []
        self._pending_classes: list[int] = []
        self._pending_sizes: list[float] = []
        self._pending_pos = 0

    def _on_bind(self) -> None:
        if self.scheduler.num_classes != self.num_classes:
            raise SimulationError("scheduler and classes disagree on the number of classes")
        self._in_service = None

    @property
    def in_service(self) -> int | None:
        """The ledger row id currently occupying the processor, if any."""
        return self._in_service

    def submit(self, request: int | Request) -> None:
        if self.batched:
            raise SimulationError(
                "per-request submit on a batched shared-processor server; use submit_batch"
            )
        rid = self.resolve(request)
        self.scheduler.enqueue(
            self.ledger.class_of(rid),
            self.ledger.size_of(rid),
            self.engine.now,
            payload=rid,
        )
        self._dispatch_if_idle()

    def submit_batch(self, rids: np.ndarray) -> None:
        if not self.batched:
            super().submit_batch(rids)
            return
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size == 0:
            return
        pos = self._pending_pos
        if pos:
            del self._pending_rids[:pos]
            del self._pending_times[:pos]
            del self._pending_classes[:pos]
            del self._pending_sizes[:pos]
            self._pending_pos = 0
        self._pending_rids.extend(rids.tolist())
        self._pending_times.extend(self.ledger.arrivals_of(rids).tolist())
        self._pending_classes.extend(self.ledger.classes_of(rids).tolist())
        self._pending_sizes.extend(self.ledger.sizes_of(rids).tolist())

    def submit_one(self, rid: int, class_index: int, arrival: float, size: float) -> None:
        self._pending_rids.append(rid)
        self._pending_times.append(arrival)
        self._pending_classes.append(class_index)
        self._pending_sizes.append(size)

    def next_completion_time(self) -> float:
        if self._in_service is not None:
            return self._completion_time
        pos = self._pending_pos
        if pos < len(self._pending_rids):
            # Idle with a pending head: after a drain the scheduler holds no
            # queued job, so the head enqueues at its arrival and starts
            # immediately — exactly the replay's next step.
            return self._pending_times[pos] + self._pending_sizes[pos] / self.capacity
        return float("inf")

    def drain(self, now: float) -> np.ndarray:
        """Replay the processor's event loop to ``now`` in virtual time.

        The scheduler sees exactly the per-event call sequence — arrivals
        enqueued at their timestamps, one ``select`` whenever the processor
        frees up — but without engine dispatch: the drain walks the pending
        block and the in-service completion with a plain loop.  Arrivals
        tied with a completion enqueue *after* the ``select`` (the
        completion-first convention; exact ties have probability zero for
        continuous workloads).
        """
        if not self.batched:
            return super().drain(now)
        ledger = self.ledger
        scheduler = self.scheduler
        rids = self._pending_rids
        times = self._pending_times
        classes = self._pending_classes
        sizes = self._pending_sizes
        n = len(rids)
        pos = self._pending_pos
        done: list[int] = []
        inf = float("inf")
        while True:
            completion = self._completion_time if self._in_service is not None else inf
            arrival = times[pos] if pos < n else inf
            if completion <= arrival:
                if completion > now:
                    break
                rid = self._in_service
                ledger.complete_unlogged(rid, completion)
                self._in_service = None
                done.append(rid)
                self._start_selected(completion)
            else:
                if arrival > now:
                    break
                # Enqueue at the arrival instant even while the processor is
                # busy: fair-queueing tags depend on the virtual time and
                # weights in force *when the job arrives*.
                idle = self._in_service is None
                scheduler.enqueue(classes[pos], sizes[pos], arrival, payload=rids[pos])
                pos += 1
                if idle:
                    self._start_selected(arrival)
        self._pending_pos = pos
        if not done:
            return np.empty(0, dtype=np.int64)
        if self.telemetry is not None:
            self.telemetry.on_server_drain(None, len(done))
        return np.asarray(done, dtype=np.int64)

    def _start_selected(self, time: float) -> bool:
        """Ask the scheduler for the next job at ``time``; start it if any."""
        job = self.scheduler.select(time)
        if job is None:
            return False
        rid = job.payload
        if not isinstance(rid, int):
            raise SimulationError("scheduler returned a job without its row-id payload")
        self.ledger.start_service(rid, time)
        self._in_service = rid
        self._completion_time = time + self.ledger.size_of(rid) / self.capacity
        return True

    def apply_rates(self, rates: Sequence[float]) -> None:
        if isinstance(self.scheduler, WeightedScheduler):
            self.scheduler.set_weights([max(r, WEIGHT_FLOOR) for r in rates])

    def backlogs(self) -> tuple[int, ...]:
        return tuple(self.scheduler.backlog(i) for i in range(self.num_classes))

    # ------------------------------------------------------------------ #
    # Dispatch loop
    # ------------------------------------------------------------------ #
    def _dispatch_if_idle(self) -> None:
        if self._in_service is not None:
            return
        job = self.scheduler.select(self.engine.now)
        if job is None:
            return
        rid = job.payload
        if not isinstance(rid, int):
            raise SimulationError("scheduler returned a job without its row-id payload")
        self.ledger.start_service(rid, self.engine.now)
        self._in_service = rid
        service_duration = self.ledger.size_of(rid) / self.capacity
        self.engine.schedule_after(service_duration, self._complete_current, label="completion")

    def _complete_current(self) -> None:
        rid = self._in_service
        if rid is None:
            raise SimulationError("completion fired while the processor was idle")
        self.ledger.complete(rid, self.engine.now)
        self._in_service = None
        self.deliver(rid)
        self._dispatch_if_idle()
