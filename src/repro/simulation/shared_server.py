"""A shared-processor server driven by a proportional-share scheduler.

The paper's simulation model idealises the rate allocation by giving every
class its own task server running at exactly the allocated rate.  A real
multi-process or multi-threaded server instead has a single processor that
serves one request at a time and realises the rates through a
proportional-share scheduler (WFQ, lottery, stride, ...).  This module
simulates that realistic variant: the scheduler's weights are set to the
allocated rates after every estimation window, and whenever the processor
becomes free the scheduler picks the next request, which is then served
non-preemptively at full speed.

Comparing the two models quantifies how much of the PSD behaviour survives
packetisation — the scheduler-ablation bench in ``benchmarks/``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.controller import PsdController
from ..core.psd import PsdSpec
from ..distributions.rng import spawn_generators
from ..errors import SimulationError
from ..scheduling.base import Scheduler, WeightedScheduler
from ..types import TrafficClass
from .engine import SimulationEngine
from .generator import RequestSource, sources_from_classes
from .monitor import MeasurementConfig, WindowedMonitor
from .psd_server import RateController, SimulationResult
from .requests import Request
from .trace import SimulationTrace

__all__ = ["SharedProcessorSimulation"]


class SharedProcessorSimulation:
    """Single full-speed processor + pluggable scheduler + PSD controller."""

    def __init__(
        self,
        classes: Sequence[TrafficClass],
        config: MeasurementConfig,
        scheduler: Scheduler,
        *,
        spec: PsdSpec | None = None,
        controller: RateController | None = None,
        seed: int | np.random.SeedSequence | None = 0,
        sources: Sequence[RequestSource] | None = None,
        capacity: float = 1.0,
    ) -> None:
        if not classes:
            raise SimulationError("classes must be non-empty")
        if scheduler.num_classes != len(classes):
            raise SimulationError("scheduler and classes disagree on the number of classes")
        if capacity <= 0.0:
            raise SimulationError("capacity must be > 0")
        self.classes = tuple(classes)
        self.config = config
        self.scheduler = scheduler
        self.capacity = float(capacity)
        self.engine = SimulationEngine()
        if controller is None:
            if spec is None:
                spec = PsdSpec(tuple(cls.delta for cls in classes))
            controller = PsdController(self.classes, spec)
        self.controller = controller
        if sources is None:
            rngs = spawn_generators(seed, len(self.classes))
            sources = sources_from_classes(self.classes, rngs)
        self.sources = list(sources)

        self.trace = SimulationTrace(len(self.classes))
        self.monitor = WindowedMonitor(
            len(self.classes), warmup=config.warmup, window=config.window
        )
        self.rate_history: list[tuple[float, tuple[float, ...]]] = []

        self._request_counter = 0
        self._window_arrivals = [0] * len(self.classes)
        self._window_work = [0.0] * len(self.classes)
        self._generated = [0] * len(self.classes)
        self._completed = [0] * len(self.classes)
        self._in_service: Request | None = None

        self._apply_rates(self.controller.current_rates, time=0.0)

    # ------------------------------------------------------------------ #
    # Controller coupling
    # ------------------------------------------------------------------ #
    def _apply_rates(self, rates: Sequence[float], *, time: float) -> None:
        if isinstance(self.scheduler, WeightedScheduler):
            # Guard against zero rates (a class with no estimated traffic):
            # weights must stay positive for the fair-queueing tag arithmetic.
            floor = 1e-9
            self.scheduler.set_weights([max(r, floor) for r in rates])
        self.rate_history.append((time, tuple(float(r) for r in rates)))

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _schedule_first_arrivals(self) -> None:
        for index, source in enumerate(self.sources):
            gap = source.next_interarrival()
            if np.isfinite(gap):
                self.engine.schedule_after(gap, self._make_arrival(index), label=f"arrival-{index}")

    def _make_arrival(self, class_index: int):
        def handle() -> None:
            source = self.sources[class_index]
            size = source.next_size()
            request = Request(
                request_id=self._request_counter,
                class_index=class_index,
                arrival_time=self.engine.now,
                size=size,
            )
            self._request_counter += 1
            self._generated[class_index] += 1
            self._window_arrivals[class_index] += 1
            self._window_work[class_index] += size
            self.scheduler.enqueue(class_index, size, self.engine.now, payload=request)
            self._dispatch_if_idle()
            gap = source.next_interarrival()
            if np.isfinite(gap):
                self.engine.schedule_after(gap, handle, label=f"arrival-{class_index}")

        return handle

    def _dispatch_if_idle(self) -> None:
        if self._in_service is not None:
            return
        job = self.scheduler.select(self.engine.now)
        if job is None:
            return
        request = job.payload
        if not isinstance(request, Request):
            raise SimulationError("scheduler returned a job without its request payload")
        request.start_service(self.engine.now)
        self._in_service = request
        service_duration = request.size / self.capacity
        self.engine.schedule_after(
            service_duration, self._complete_current, label="completion"
        )

    def _complete_current(self) -> None:
        request = self._in_service
        if request is None:
            raise SimulationError("completion fired while the processor was idle")
        request.complete(self.engine.now)
        self._in_service = None
        self._completed[request.class_index] += 1
        record = self.trace.add(request)
        self.monitor.record(record)
        self._dispatch_if_idle()

    def _window_boundary(self) -> None:
        arrivals = tuple(self._window_arrivals)
        work = tuple(self._window_work)
        self._window_arrivals = [0] * len(self.classes)
        self._window_work = [0.0] * len(self.classes)
        self.controller.observe_window(self.engine.now, self.config.window, arrivals, work)
        self._apply_rates(self.controller.current_rates, time=self.engine.now)
        next_boundary = self.engine.now + self.config.window
        if next_boundary <= self.config.horizon:
            self.engine.schedule_at(next_boundary, self._window_boundary, label="window")

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        self._schedule_first_arrivals()
        self.engine.schedule_at(self.config.window, self._window_boundary, label="window")
        self.engine.run_until(self.config.horizon)
        return SimulationResult(
            classes=self.classes,
            config=self.config,
            trace=self.trace,
            monitor=self.monitor,
            controller=self.controller,
            rate_history=self.rate_history,
            generated_counts=tuple(self._generated),
            completed_counts=tuple(self._completed),
        )
