"""A shared-processor server driven by a proportional-share scheduler.

This module is a thin compatibility wrapper: the common assembly lives in
:class:`repro.simulation.scenario.Scenario`, and the single full-speed
processor with a pluggable scheduler lives in
:class:`repro.simulation.server_models.SharedProcessorServer`.
:class:`SharedProcessorSimulation` pre-selects that server model.

Comparing this realisation with the idealised
:class:`~repro.simulation.psd_server.PsdServerSimulation` quantifies how
much of the PSD behaviour survives packetisation — the scheduler-ablation
bench in ``benchmarks/``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.psd import PsdSpec
from ..scheduling.base import Scheduler
from ..types import TrafficClass
from .generator import RequestSource
from .monitor import MeasurementConfig
from .scenario import RateController, Scenario, SimulationResult
from .server_models import SharedProcessorServer

__all__ = ["SharedProcessorSimulation", "SimulationResult"]


class SharedProcessorSimulation(Scenario):
    """Single full-speed processor + pluggable scheduler + PSD controller.

    Equivalent to ``Scenario(classes, config,
    server=SharedProcessorServer(scheduler, capacity=capacity), ...)``.
    """

    def __init__(
        self,
        classes: Sequence[TrafficClass],
        config: MeasurementConfig,
        scheduler: Scheduler,
        *,
        spec: PsdSpec | None = None,
        controller: RateController | None = None,
        seed: int | np.random.SeedSequence | None = 0,
        sources: Sequence[RequestSource] | None = None,
        capacity: float = 1.0,
        admission: "AdmissionPolicy | None" = None,
        batched: bool | None = None,
    ) -> None:
        super().__init__(
            classes,
            config,
            server=SharedProcessorServer(scheduler, capacity=capacity),
            spec=spec,
            controller=controller,
            seed=seed,
            sources=sources,
            admission=admission,
            batched=batched,
        )

    @property
    def scheduler(self) -> Scheduler:
        """The proportional-share scheduler realising the rate allocation."""
        return self.server.scheduler

    @property
    def capacity(self) -> float:
        """The shared processor's full-speed capacity."""
        return self.server.capacity
