"""Discrete-event simulation of PSD provisioning on an Internet server.

The package is layered as *engine -> scenario -> server model -> runner*:

* :mod:`repro.simulation.engine` / :mod:`repro.simulation.events` — the DES
  core (clock, calendar, run loop).
* :mod:`repro.simulation.ledger` — :class:`RequestLedger`, the columnar
  (struct-of-arrays) request store: every request is one row across
  preallocated NumPy columns, addressed by integer id; the whole lifecycle
  (servers, cluster dispatch, monitor, trace) moves ids, never objects.
* :mod:`repro.simulation.generator` — per-class request sources (Poisson,
  deterministic, trace replay).
* :mod:`repro.simulation.scenario` — :class:`Scenario`, the composable
  assembly every simulation shares: sources, admission, windowed monitor,
  trace, estimation-window ticks and the controller hookup.
* :mod:`repro.simulation.server_models` — pluggable :class:`ServerModel`
  substrates: :class:`RateScalableServers` (the paper's idealised Fig. 1
  model) and :class:`SharedProcessorServer` (one full-speed processor driven
  by any :mod:`repro.scheduling` discipline).
* :mod:`repro.simulation.psd_server` / :mod:`repro.simulation.shared_server`
  — thin named wrappers (``PsdServerSimulation``,
  ``SharedProcessorSimulation``) that pre-select a server model.
* :mod:`repro.simulation.monitor` / :mod:`repro.simulation.trace` —
  measurement.
* :mod:`repro.simulation.trace_io` — :func:`load_trace` / :func:`save_trace`:
  CSV/NPZ arrival logs parsed columnar into per-class :class:`TraceSource`s,
  and completed runs written back out as replayable logs.
* :mod:`repro.simulation.runner` — :class:`ReplicationRunner`:
  multi-replication orchestration, serial or parallel (forked workers) with
  bit-identical aggregates for any worker count.

Adding a new server model
-------------------------
Subclass :class:`ServerModel` and implement ``_on_bind`` (build per-run
state against the engine), ``submit`` (serve an admitted request, calling
``self.deliver(request)`` once it completes), ``apply_rates`` (react to a
re-allocation) and ``backlogs``.  Then run it with
``Scenario(classes, config, server=YourModel(...)).run()`` — every
experiment driver, example and bench composes through that same path.
"""

from .engine import SimulationEngine
from .events import Event, EventQueue
from .generator import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    RequestSource,
    TraceSource,
    sources_from_classes,
)
from .ledger import RequestLedger
from .monitor import (
    MeasurementConfig,
    WindowSample,
    WindowedMonitor,
    fleet_availability,
)
from .psd_server import PsdServerSimulation
from .requests import Request
from .runner import (
    ReplicatedStatistic,
    ReplicationRunner,
    ReplicationSummary,
    WorkerPool,
    run_replications,
    shared_pool,
    summarise_replications,
)
from .scenario import (
    RateController,
    Scenario,
    SimulationResult,
    StaticRateController,
)
from .server_models import (
    RateScalableServers,
    ServerModel,
    SharedProcessorServer,
)
from .shared_server import SharedProcessorSimulation
from .task_server import FcfsTaskServer
from .trace import RequestRecord, SimulationTrace
from .trace_io import load_trace, save_trace, trace_sources_from_arrays

__all__ = [
    "SimulationEngine",
    "Event",
    "EventQueue",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "RequestSource",
    "TraceSource",
    "sources_from_classes",
    "load_trace",
    "save_trace",
    "trace_sources_from_arrays",
    "MeasurementConfig",
    "WindowSample",
    "WindowedMonitor",
    "fleet_availability",
    "Request",
    "RequestLedger",
    "FcfsTaskServer",
    "Scenario",
    "ServerModel",
    "RateScalableServers",
    "SharedProcessorServer",
    "PsdServerSimulation",
    "SharedProcessorSimulation",
    "SimulationResult",
    "RateController",
    "StaticRateController",
    "SimulationTrace",
    "RequestRecord",
    "ReplicationRunner",
    "ReplicationSummary",
    "ReplicatedStatistic",
    "WorkerPool",
    "shared_pool",
    "run_replications",
    "summarise_replications",
]
