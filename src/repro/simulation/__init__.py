"""Discrete-event simulation of PSD provisioning on an Internet server.

* :mod:`repro.simulation.engine` / :mod:`repro.simulation.events` — the DES core.
* :mod:`repro.simulation.generator` — per-class Poisson request sources.
* :mod:`repro.simulation.task_server` — rate-scalable FCFS task servers.
* :mod:`repro.simulation.psd_server` — the full Fig. 1 model (idealised task servers).
* :mod:`repro.simulation.shared_server` — a single processor driven by a
  proportional-share scheduler (the packetised counterpart).
* :mod:`repro.simulation.monitor` / :mod:`repro.simulation.trace` — measurement.
* :mod:`repro.simulation.runner` — multi-replication orchestration.
"""

from .engine import SimulationEngine
from .events import Event, EventQueue
from .generator import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    RequestSource,
    TraceSource,
    sources_from_classes,
)
from .monitor import MeasurementConfig, WindowSample, WindowedMonitor
from .psd_server import (
    PsdServerSimulation,
    RateController,
    SimulationResult,
    StaticRateController,
)
from .requests import Request
from .runner import (
    ReplicatedStatistic,
    ReplicationSummary,
    run_replications,
    summarise_replications,
)
from .shared_server import SharedProcessorSimulation
from .task_server import FcfsTaskServer
from .trace import RequestRecord, SimulationTrace

__all__ = [
    "SimulationEngine",
    "Event",
    "EventQueue",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "RequestSource",
    "TraceSource",
    "sources_from_classes",
    "MeasurementConfig",
    "WindowSample",
    "WindowedMonitor",
    "Request",
    "FcfsTaskServer",
    "PsdServerSimulation",
    "SharedProcessorSimulation",
    "SimulationResult",
    "RateController",
    "StaticRateController",
    "SimulationTrace",
    "RequestRecord",
    "ReplicationSummary",
    "ReplicatedStatistic",
    "run_replications",
    "summarise_replications",
]
