"""Arrival logs: loading recorded traffic, and capturing simulated runs.

Real serving platforms evaluate provisioning policies against *recorded*
traffic.  :func:`load_trace` reads an arrival log — CSV or NPZ, one row per
request with the request's class, absolute arrival time and full-rate
service demand — and turns it into one
:class:`~repro.simulation.generator.TraceSource` per class, ready to drive a
:class:`~repro.simulation.Scenario` (``Scenario(classes, config,
sources=load_trace(path))``).

:func:`save_trace` is the inverse: it writes a completed run's
:class:`~repro.simulation.ledger.RequestLedger` (or a
:class:`~repro.simulation.SimulationResult` / scenario holding one) back out
as the same arrival-log format, so simulated traffic feeds straight back
into replay pipelines — ``load_trace(save_trace(path, result))`` reproduces
the run's arrival sequence exactly.

The whole pipeline is columnar: the log is parsed into NumPy arrays, split
per class with boolean masks, and the per-class inter-arrival gaps are
computed with ``np.diff`` — no per-request Python objects exist until the
simulation replays them, so multi-million-request logs load in a few array
allocations.

Formats
-------
CSV
    A header line naming the columns ``class_index``, ``arrival_time`` and
    ``size`` (any order; extra columns are ignored), then one numeric row
    per request.
NPZ
    ``np.savez(path, class_index=..., arrival_time=..., size=...)`` with
    three equal-length one-dimensional arrays.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ParameterError
from .generator import TraceSource

__all__ = ["load_trace", "save_trace", "trace_sources_from_arrays"]

_REQUIRED_COLUMNS = ("class_index", "arrival_time", "size")

#: ``%.17g`` prints the shortest decimal that round-trips an IEEE double, so
#: a CSV written by :func:`save_trace` reloads bit-identically.
_CSV_FORMATS = ("%d", "%.17g", "%.17g")


def load_trace(path: str | os.PathLike, *, num_classes: int | None = None) -> list[TraceSource]:
    """Read a CSV or NPZ arrival log into one ``TraceSource`` per class.

    ``num_classes`` pads the result with empty sources for classes absent
    from the log (defaults to ``max(class_index) + 1``); a class index at or
    beyond an explicit ``num_classes`` is an error.
    """
    path = os.fspath(path)
    extension = os.path.splitext(path)[1].lower()
    if extension == ".npz":
        columns = _read_npz(path)
    elif extension in (".csv", ".txt"):
        columns = _read_csv(path)
    else:
        raise ParameterError(
            f"unsupported trace format {extension!r} for {path!r}; use .csv or .npz"
        )
    return trace_sources_from_arrays(*columns, num_classes=num_classes)


def trace_sources_from_arrays(
    class_index: np.ndarray,
    arrival_time: np.ndarray,
    size: np.ndarray,
    *,
    num_classes: int | None = None,
) -> list[TraceSource]:
    """Split columnar (class, arrival time, size) arrays into trace sources.

    Arrival times must be non-decreasing *per class*; the first request of a
    class gets its absolute arrival time as the gap from the simulation
    start, subsequent requests the difference to the class's previous
    arrival.
    """
    classes = np.asarray(class_index)
    arrivals = np.asarray(arrival_time, dtype=float)
    sizes = np.asarray(size, dtype=float)
    if classes.ndim != 1 or arrivals.ndim != 1 or sizes.ndim != 1:
        raise ParameterError("trace columns must be one-dimensional")
    if not (classes.shape == arrivals.shape == sizes.shape):
        raise ParameterError("trace columns must have the same length")
    if classes.size and not np.all(np.isfinite(classes)):
        raise ParameterError("class_index contains non-finite values")
    if classes.size and np.any(classes != np.floor(classes)):
        raise ParameterError("class_index contains non-integer values (columns swapped?)")
    classes = classes.astype(np.int64)
    if classes.size and classes.min() < 0:
        raise ParameterError("class_index must be >= 0")
    if arrivals.size and (not np.all(np.isfinite(arrivals)) or arrivals.min() < 0.0):
        raise ParameterError("arrival_time must be finite and >= 0")

    highest = int(classes.max()) + 1 if classes.size else 0
    if num_classes is None:
        num_classes = max(highest, 1)
    elif num_classes < highest:
        raise ParameterError(f"trace references class {highest - 1} but num_classes={num_classes}")

    sources = []
    for c in range(num_classes):
        mask = classes == c
        class_arrivals = arrivals[mask]
        if class_arrivals.size and np.any(np.diff(class_arrivals) < 0.0):
            raise ParameterError(
                f"arrival times of class {c} are not sorted; sort the log by "
                "arrival_time before loading"
            )
        gaps = np.diff(class_arrivals, prepend=0.0)
        sources.append(TraceSource(c, gaps, sizes[mask]))
    return sources


def _arrival_columns(source) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract (class_index, arrival_time, size) from any run artefact.

    Accepts a :class:`~repro.simulation.ledger.RequestLedger` directly, or
    anything carrying one under a ``ledger`` attribute (a
    :class:`~repro.simulation.Scenario`, a
    :class:`~repro.simulation.SimulationResult`, a ledger-backed trace).
    Every ledger row is an arrival, already in arrival-time order — exactly
    what :func:`load_trace` expects back.
    """
    ledger = getattr(source, "ledger", source)
    columns = (
        getattr(ledger, "class_index", None),
        getattr(ledger, "arrival_time", None),
        getattr(ledger, "size", None),
    )
    if any(column is None for column in columns):
        raise ParameterError(
            f"cannot extract arrival columns from {type(source).__name__}; pass "
            "a RequestLedger or an object exposing one via `.ledger`"
        )
    return tuple(np.asarray(column) for column in columns)


def save_trace(path: str | os.PathLike, source) -> str:
    """Write a run's arrivals out as a CSV or NPZ log; returns the path.

    ``source`` is a :class:`~repro.simulation.ledger.RequestLedger` or any
    object exposing one as ``.ledger`` (a completed
    :class:`~repro.simulation.SimulationResult`, a scenario, a ledger-backed
    trace).  The format follows the extension, exactly as in
    :func:`load_trace`; both formats round-trip bit-identically
    (the CSV uses ``%.17g``, the shortest exact rendering of a double).
    """
    path = os.fspath(path)
    classes, arrivals, sizes = _arrival_columns(source)
    extension = os.path.splitext(path)[1].lower()
    if extension == ".npz":
        np.savez(path, class_index=classes, arrival_time=arrivals, size=sizes)
    elif extension in (".csv", ".txt"):
        np.savetxt(
            path,
            np.column_stack((classes, arrivals, sizes)),
            fmt=list(_CSV_FORMATS),
            delimiter=",",
            header=",".join(_REQUIRED_COLUMNS),
            comments="",
        )
    else:
        raise ParameterError(
            f"unsupported trace format {extension!r} for {path!r}; use .csv or .npz"
        )
    return path


def _read_npz(path: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    with np.load(path) as archive:
        missing = [name for name in _REQUIRED_COLUMNS if name not in archive.files]
        if missing:
            raise ParameterError(f"trace archive {path!r} is missing arrays {missing}")
        return tuple(archive[name] for name in _REQUIRED_COLUMNS)


def _read_csv(path: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    table = np.genfromtxt(path, delimiter=",", names=True, dtype=float)
    names = table.dtype.names or ()
    missing = [name for name in _REQUIRED_COLUMNS if name not in names]
    if missing:
        raise ParameterError(
            f"trace file {path!r} is missing columns {missing} (header row has "
            f"{list(names)})"
        )
    table = np.atleast_1d(table)
    return tuple(table[name] for name in _REQUIRED_COLUMNS)
