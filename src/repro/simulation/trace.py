"""Per-request traces and post-run query helpers.

Completed requests are exposed as immutable :class:`RequestRecord` snapshots
collected in a :class:`SimulationTrace`, which offers the slicing operations
the experiments need (filter by class, by time window, convert to NumPy
arrays, per-class mean slowdowns) so that figure drivers never re-implement
ad-hoc loops over the raw trace.

Since the ledger refactor a trace comes in two flavours:

* **ledger-backed** (what every :class:`~repro.simulation.Scenario` run
  produces): the trace is a read-only view over the scenario's
  :class:`~repro.simulation.ledger.RequestLedger`.  Nothing is appended per
  completion; vector queries (``slowdowns``, ``to_arrays``,
  ``per_class_counts``) reduce the columns directly, and
  :class:`RequestRecord` objects are materialised lazily only when record
  iteration is actually requested.
* **append-mode** (standalone use): :meth:`add` snapshots completed
  requests one by one, exactly as before the refactor.

Record iteration order is identical in both modes: completion order (the
append-mode caller adds at completion time; the ledger logs its completion
order explicitly).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .ledger import RequestLedger
from .requests import Request

__all__ = ["RequestRecord", "SimulationTrace"]


@dataclass(frozen=True)
class RequestRecord:
    """Immutable snapshot of a completed request."""

    request_id: int
    class_index: int
    arrival_time: float
    size: float
    service_start_time: float
    completion_time: float

    @property
    def waiting_time(self) -> float:
        return self.service_start_time - self.arrival_time

    @property
    def response_time(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def service_duration(self) -> float:
        return self.completion_time - self.service_start_time

    @property
    def slowdown(self) -> float:
        """Queueing delay over the time actually spent in service (the paper's metric)."""
        return self.waiting_time / self.service_duration

    @property
    def demand_slowdown(self) -> float:
        """Queueing delay over the full-rate service demand ``size``."""
        return self.waiting_time / self.size

    @classmethod
    def from_request(cls, request: Request) -> "RequestRecord":
        if not request.is_complete:
            raise SimulationError(f"cannot record incomplete request {request.request_id}")
        return cls(
            request_id=request.request_id,
            class_index=request.class_index,
            arrival_time=request.arrival_time,
            size=request.size,
            service_start_time=request.service_start_time,
            completion_time=request.completion_time,
        )


class SimulationTrace:
    """Completed-request records: appendable, or a view over a ledger."""

    def __init__(self, num_classes: int, *, ledger: RequestLedger | None = None) -> None:
        if num_classes <= 0:
            raise SimulationError("num_classes must be > 0")
        self.num_classes = int(num_classes)
        self._ledger = ledger
        self._records: list[RequestRecord] = []

    @property
    def ledger(self) -> RequestLedger | None:
        """The backing ledger, if this trace is a ledger view."""
        return self._ledger

    # ------------------------------------------------------------------ #
    # Collection (append mode)
    # ------------------------------------------------------------------ #
    def add(self, request: Request) -> RequestRecord:
        if self._ledger is not None:
            raise SimulationError(
                "a ledger-backed trace is a read-only view; completions are "
                "recorded by completing their ledger rows"
            )
        record = RequestRecord.from_request(request)
        if not (0 <= record.class_index < self.num_classes):
            raise SimulationError(
                f"record class {record.class_index} out of range [0, {self.num_classes})"
            )
        self._records.append(record)
        return record

    def extend(self, requests: Iterable[Request]) -> None:
        for request in requests:
            self.add(request)

    # ------------------------------------------------------------------ #
    # Ledger materialisation
    # ------------------------------------------------------------------ #
    def _completed_ids(self) -> np.ndarray:
        return self._ledger.completed_ids

    def _record_of(self, rid: int) -> RequestRecord:
        ledger = self._ledger
        return RequestRecord(
            request_id=ledger.label_of(rid),
            class_index=ledger.class_of(rid),
            arrival_time=ledger.arrival_of(rid),
            size=ledger.size_of(rid),
            service_start_time=ledger.start_of(rid),
            completion_time=ledger.completion_of(rid),
        )

    def _materialise(self, ids: np.ndarray) -> list[RequestRecord]:
        return [self._record_of(rid) for rid in ids]

    def __len__(self) -> int:
        if self._ledger is not None:
            return self._ledger.num_completed
        return len(self._records)

    def __iter__(self):
        if self._ledger is not None:
            # One record at a time: callers that stop early never pay for
            # materialising the rest of the ledger.
            return (self._record_of(rid) for rid in self._completed_ids())
        return iter(self._records)

    @property
    def records(self) -> Sequence[RequestRecord]:
        if self._ledger is not None:
            return tuple(self._materialise(self._completed_ids()))
        return tuple(self._records)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def for_class(self, class_index: int) -> list[RequestRecord]:
        if self._ledger is not None:
            ids = self._completed_ids()
            mask = self._ledger.class_index[ids] == class_index
            return self._materialise(ids[mask])
        return [r for r in self._records if r.class_index == class_index]

    def in_window(self, start: float, end: float, *, by: str = "arrival") -> list[RequestRecord]:
        """Records whose ``arrival`` (default) or ``completion`` time lies in ``[start, end)``."""
        if by not in ("arrival", "completion"):
            raise SimulationError("by must be 'arrival' or 'completion'")
        if self._ledger is not None:
            ids = self._completed_ids()
            column = (
                self._ledger.arrival_time if by == "arrival" else self._ledger.completion_time
            )
            times = column[ids]
            return self._materialise(ids[(start <= times) & (times < end)])
        if by == "arrival":
            return [r for r in self._records if start <= r.arrival_time < end]
        return [r for r in self._records if start <= r.completion_time < end]

    def slowdowns(self, class_index: int | None = None) -> np.ndarray:
        if self._ledger is not None:
            ids = self._completed_ids()
            if class_index is not None:
                ids = ids[self._ledger.class_index[ids] == class_index]
            return self._ledger.slowdowns(ids)
        records = self._records if class_index is None else self.for_class(class_index)
        return np.asarray([r.slowdown for r in records], dtype=float)

    def waiting_times(self, class_index: int | None = None) -> np.ndarray:
        if self._ledger is not None:
            ids = self._completed_ids()
            if class_index is not None:
                ids = ids[self._ledger.class_index[ids] == class_index]
            return self._ledger.waiting_times(ids)
        records = self._records if class_index is None else self.for_class(class_index)
        return np.asarray([r.waiting_time for r in records], dtype=float)

    def mean_slowdown(self, class_index: int | None = None) -> float:
        values = self.slowdowns(class_index)
        return float(np.mean(values)) if values.size else float("nan")

    def per_class_mean_slowdowns(self) -> tuple[float, ...]:
        return tuple(self.mean_slowdown(c) for c in range(self.num_classes))

    def per_class_counts(self) -> tuple[int, ...]:
        if self._ledger is not None:
            counts = np.bincount(
                self._ledger.class_index[self._completed_ids()],
                minlength=self.num_classes,
            )
            return tuple(int(c) for c in counts)
        counts = [0] * self.num_classes
        for r in self._records:
            counts[r.class_index] += 1
        return tuple(counts)

    def weighted_system_slowdown(self) -> float:
        """Request-weighted mean slowdown across all classes.

        This is the "achieved system slowdown" curve of Fig. 2 of the paper
        (the weighted slowdown of the classes).
        """
        return self.mean_slowdown(None)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar view of the whole trace (for plotting or DataFrame-free analysis)."""
        if self._ledger is not None:
            ids = self._completed_ids()
            ledger = self._ledger
            start = ledger.service_start_time[ids]
            arrival = ledger.arrival_time[ids]
            completion = ledger.completion_time[ids]
            waiting = start - arrival
            return {
                "request_id": ledger.request_id[ids],
                "class_index": ledger.class_index[ids],
                "arrival_time": arrival,
                "size": ledger.size[ids],
                "service_start_time": start,
                "completion_time": completion,
                "waiting_time": waiting,
                "slowdown": waiting / (completion - start),
            }
        return {
            "request_id": np.asarray([r.request_id for r in self._records], dtype=int),
            "class_index": np.asarray([r.class_index for r in self._records], dtype=int),
            "arrival_time": np.asarray([r.arrival_time for r in self._records], dtype=float),
            "size": np.asarray([r.size for r in self._records], dtype=float),
            "service_start_time": np.asarray(
                [r.service_start_time for r in self._records], dtype=float
            ),
            "completion_time": np.asarray(
                [r.completion_time for r in self._records], dtype=float
            ),
            "waiting_time": np.asarray([r.waiting_time for r in self._records], dtype=float),
            "slowdown": np.asarray([r.slowdown for r in self._records], dtype=float),
        }
