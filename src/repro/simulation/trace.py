"""Per-request traces and post-run query helpers.

Every completed request is recorded as an immutable :class:`RequestRecord`;
:class:`SimulationTrace` collects them and offers the slicing operations the
experiments need (filter by class, by time window, convert to NumPy arrays,
per-class mean slowdowns), so that figure drivers never re-implement ad-hoc
loops over the raw trace.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .requests import Request

__all__ = ["RequestRecord", "SimulationTrace"]


@dataclass(frozen=True)
class RequestRecord:
    """Immutable snapshot of a completed request."""

    request_id: int
    class_index: int
    arrival_time: float
    size: float
    service_start_time: float
    completion_time: float

    @property
    def waiting_time(self) -> float:
        return self.service_start_time - self.arrival_time

    @property
    def response_time(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def service_duration(self) -> float:
        return self.completion_time - self.service_start_time

    @property
    def slowdown(self) -> float:
        """Queueing delay over the time actually spent in service (the paper's metric)."""
        return self.waiting_time / self.service_duration

    @property
    def demand_slowdown(self) -> float:
        """Queueing delay over the full-rate service demand ``size``."""
        return self.waiting_time / self.size

    @classmethod
    def from_request(cls, request: Request) -> "RequestRecord":
        if not request.is_complete:
            raise SimulationError(
                f"cannot record incomplete request {request.request_id}"
            )
        return cls(
            request_id=request.request_id,
            class_index=request.class_index,
            arrival_time=request.arrival_time,
            size=request.size,
            service_start_time=request.service_start_time,
            completion_time=request.completion_time,
        )


class SimulationTrace:
    """An append-only collection of completed-request records."""

    def __init__(self, num_classes: int) -> None:
        if num_classes <= 0:
            raise SimulationError("num_classes must be > 0")
        self.num_classes = int(num_classes)
        self._records: list[RequestRecord] = []

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #
    def add(self, request: Request) -> RequestRecord:
        record = RequestRecord.from_request(request)
        if not (0 <= record.class_index < self.num_classes):
            raise SimulationError(
                f"record class {record.class_index} out of range [0, {self.num_classes})"
            )
        self._records.append(record)
        return record

    def extend(self, requests: Iterable[Request]) -> None:
        for request in requests:
            self.add(request)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> Sequence[RequestRecord]:
        return tuple(self._records)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def for_class(self, class_index: int) -> list[RequestRecord]:
        return [r for r in self._records if r.class_index == class_index]

    def in_window(self, start: float, end: float, *, by: str = "arrival") -> list[RequestRecord]:
        """Records whose ``arrival`` (default) or ``completion`` time lies in ``[start, end)``."""
        if by not in ("arrival", "completion"):
            raise SimulationError("by must be 'arrival' or 'completion'")
        if by == "arrival":
            return [r for r in self._records if start <= r.arrival_time < end]
        return [r for r in self._records if start <= r.completion_time < end]

    def slowdowns(self, class_index: int | None = None) -> np.ndarray:
        records = self._records if class_index is None else self.for_class(class_index)
        return np.asarray([r.slowdown for r in records], dtype=float)

    def waiting_times(self, class_index: int | None = None) -> np.ndarray:
        records = self._records if class_index is None else self.for_class(class_index)
        return np.asarray([r.waiting_time for r in records], dtype=float)

    def mean_slowdown(self, class_index: int | None = None) -> float:
        values = self.slowdowns(class_index)
        return float(np.mean(values)) if values.size else float("nan")

    def per_class_mean_slowdowns(self) -> tuple[float, ...]:
        return tuple(self.mean_slowdown(c) for c in range(self.num_classes))

    def per_class_counts(self) -> tuple[int, ...]:
        counts = [0] * self.num_classes
        for r in self._records:
            counts[r.class_index] += 1
        return tuple(counts)

    def weighted_system_slowdown(self) -> float:
        """Request-weighted mean slowdown across all classes.

        This is the "achieved system slowdown" curve of Fig. 2 of the paper
        (the weighted slowdown of the classes).
        """
        return self.mean_slowdown(None)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar view of the whole trace (for plotting or DataFrame-free analysis)."""
        return {
            "request_id": np.asarray([r.request_id for r in self._records], dtype=int),
            "class_index": np.asarray([r.class_index for r in self._records], dtype=int),
            "arrival_time": np.asarray([r.arrival_time for r in self._records], dtype=float),
            "size": np.asarray([r.size for r in self._records], dtype=float),
            "service_start_time": np.asarray(
                [r.service_start_time for r in self._records], dtype=float
            ),
            "completion_time": np.asarray(
                [r.completion_time for r in self._records], dtype=float
            ),
            "waiting_time": np.asarray([r.waiting_time for r in self._records], dtype=float),
            "slowdown": np.asarray([r.slowdown for r in self._records], dtype=float),
        }
