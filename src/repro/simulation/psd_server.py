"""The full PSD server simulation (Figure 1 of the paper).

This module is a thin compatibility wrapper: the common assembly (sources,
monitor, trace, estimation windows, controller hookup) lives in
:class:`repro.simulation.scenario.Scenario`, and the idealised per-class
rate-scalable task servers live in
:class:`repro.simulation.server_models.RateScalableServers`.
:class:`PsdServerSimulation` simply pre-selects that server model, so legacy
call sites keep working unchanged.

``RateController``, ``StaticRateController`` and ``SimulationResult`` are
re-exported from :mod:`repro.simulation.scenario` for backwards
compatibility.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.psd import PsdSpec
from ..types import TrafficClass
from .generator import RequestSource
from .monitor import MeasurementConfig
from .scenario import (
    RateController,
    Scenario,
    SimulationResult,
    StaticRateController,
)
from .server_models import RateScalableServers
from .task_server import FcfsTaskServer

__all__ = ["SimulationResult", "PsdServerSimulation", "RateController", "StaticRateController"]


class PsdServerSimulation(Scenario):
    """Discrete-event simulation of the PSD server of Fig. 1.

    Equivalent to ``Scenario(classes, config, server=RateScalableServers(),
    ...)``; kept as a named entry point for the paper's model.
    """

    def __init__(
        self,
        classes: Sequence[TrafficClass],
        config: MeasurementConfig,
        *,
        spec: PsdSpec | None = None,
        controller: RateController | None = None,
        seed: int | np.random.SeedSequence | None = 0,
        sources: Sequence[RequestSource] | None = None,
        admission: "AdmissionPolicy | None" = None,
        batched: bool | None = None,
    ) -> None:
        super().__init__(
            classes,
            config,
            server=RateScalableServers(),
            spec=spec,
            controller=controller,
            seed=seed,
            sources=sources,
            admission=admission,
            batched=batched,
        )

    @property
    def task_servers(self) -> list[FcfsTaskServer]:
        """The per-class rate-scalable task servers of the Fig. 1 model."""
        return self.server.servers
