"""Event calendar for the discrete-event simulation engine.

A minimal but complete future-event set: events are ordered by time with a
monotonically increasing sequence number as the tie-breaker (so simultaneous
events fire in scheduling order, which keeps runs deterministic), and events
can be cancelled in O(1) by marking them invalid (lazy deletion on pop).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so they can live directly in the
    heap.  ``cancelled`` events are skipped when popped.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when reached."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def push(self, time: float, callback: Callable[[], None], *, label: str = "") -> Event:
        """Schedule ``callback`` at simulated ``time`` and return the event handle."""
        if not (time == time):  # NaN check without importing math
            raise SimulationError("cannot schedule an event at NaN time")
        event = Event(
            time=float(time), sequence=next(self._counter), callback=callback, label=label
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        self._heap.clear()
