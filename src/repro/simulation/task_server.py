"""A rate-scalable FCFS task server.

The paper's simulation model (Fig. 1) dedicates one task server to every
request class: requests of the class wait in a FCFS queue and are served one
at a time at the task server's currently allocated processing rate.  The rate
can change while a request is in service (the rate allocator runs every
estimation window); the server therefore tracks the *remaining work* of the
in-service request and reschedules its completion whenever the rate changes,
exactly as a proportional-share CPU scheduler would.

Since the ledger refactor the server is columnar: its queue holds integer
ledger row ids, lifecycle timestamps are written straight into the
:class:`~repro.simulation.ledger.RequestLedger` columns, and the completion
callback hands back the id.  Standalone :class:`Request` objects are still
accepted by :meth:`submit` (they are interned into the server's ledger), so
object-style call sites keep working.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from ..errors import SimulationError
from ..validation import require_non_negative
from .engine import SimulationEngine
from .ledger import RequestLedger
from .requests import Request

__all__ = ["FcfsTaskServer"]

#: Shared zero-length drain result: most drain calls on the cluster walk's
#: per-completion cadence return nothing, so the empty pair is allocated
#: once (callers only read it).
_EMPTY_RIDS = np.empty(0, dtype=np.int64)
_EMPTY_TIMES = np.empty(0, dtype=np.float64)

#: Below this run length the drain writes lifecycle columns with the scalar
#: ledger calls — identical values, but without the per-call array
#: construction and vectorised NaN screens that dwarf a one-request run.
_SCALAR_BATCH_LIMIT = 8


class FcfsTaskServer:
    """FCFS queue plus a single service position running at a mutable rate.

    Two dispatch modes share the same progress bookkeeping:

    * per-event (default): every completion is an engine event, exactly as
      the paper's Fig. 1 describes the model;
    * batched (``batched=True``): arrivals are pushed in blocks via
      :meth:`submit_batch` and completions are computed in bulk by
      :meth:`drain` — legal because between two rate changes the FCFS run's
      completion times are a deterministic left fold of the arrival block.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        class_index: int,
        rate: float,
        *,
        ledger: RequestLedger | None = None,
        on_completion: Callable[[int], None] | None = None,
        batched: bool = False,
    ) -> None:
        require_non_negative(rate, "rate")
        self.engine = engine
        self.class_index = int(class_index)
        self.ledger = ledger if ledger is not None else RequestLedger()
        self._rate = float(rate)
        self._on_completion = on_completion
        self.batched = bool(batched)
        self.queue: deque[int] = deque()
        self.in_service: int | None = None
        self._remaining_work = 0.0
        self._last_progress_time = 0.0
        self._completion_event = None
        self.busy_time = 0.0
        self.completed_count = 0
        # Batched mode: the pending block (rids + gathered arrival/size
        # columns), consumed from ``_pending_pos`` by successive drains.
        # Plain Python lists: the cluster walk pushes one arrival at a time
        # (O(1) append) and the drain's left fold reads scalars anyway.
        self._pending_rids: list[int] = []
        self._pending_arrivals: list[float] = []
        self._pending_sizes: list[float] = []
        self._pending_pos = 0

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #
    @property
    def rate(self) -> float:
        """The task server's current normalised processing rate."""
        return self._rate

    @property
    def backlog(self) -> int:
        """Requests waiting in queue (not counting the one in service)."""
        if self.batched:
            return len(self._pending_rids) - self._pending_pos
        return len(self.queue)

    @property
    def is_busy(self) -> bool:
        return self.in_service is not None

    def submit(self, request: int | Request) -> None:
        """A request of this class arrived: queue it (and serve it if idle).

        ``request`` is a ledger row id on the hot path; a standalone
        :class:`Request` view is interned into the server's ledger first.
        """
        if self.batched:
            raise SimulationError(
                "per-request submit on a batched task server; use submit_batch"
            )
        rid = self.ledger.resolve(request)
        class_index = self.ledger.class_of(rid)
        if class_index != self.class_index:
            raise SimulationError(
                f"request of class {class_index} submitted to task "
                f"server {self.class_index}"
            )
        self.queue.append(rid)
        if self.in_service is None:
            self._start_next()

    def submit_batch(self, rids: np.ndarray) -> None:
        """Queue a time-ordered block of this class's row ids (batched mode)."""
        if not self.batched:
            raise SimulationError("submit_batch on a per-event task server")
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size == 0:
            return
        pos = self._pending_pos
        if pos:
            del self._pending_rids[:pos]
            del self._pending_arrivals[:pos]
            del self._pending_sizes[:pos]
            self._pending_pos = 0
        self._pending_rids.extend(rids.tolist())
        self._pending_arrivals.extend(self.ledger.arrivals_of(rids).tolist())
        self._pending_sizes.extend(self.ledger.sizes_of(rids).tolist())

    def push(self, rid: int, arrival: float, size: float) -> None:
        """Queue a single arrival (batched mode, cluster dispatch walk).

        The caller hands over the already-gathered ledger columns so the
        per-request hot path performs three list appends and nothing else.
        """
        self._pending_rids.append(rid)
        self._pending_arrivals.append(arrival)
        self._pending_sizes.append(size)

    def next_completion_time(self) -> float:
        """When the next completion would occur, ``inf`` if idle or frozen.

        Computes the very value :meth:`drain` would produce for the head of
        the line — the carried in-service completion, or the first pending
        arrival's fold step — so a caller interleaving several servers'
        completions (the cluster walk) sees bit-identical timestamps without
        draining anything.
        """
        rate = self._rate
        if self.in_service is not None:
            if rate <= 0.0:
                return float("inf")
            return self._last_progress_time + self._remaining_work / rate
        pos = self._pending_pos
        if pos >= len(self._pending_rids) or rate <= 0.0:
            return float("inf")
        arrival = self._pending_arrivals[pos]
        free = self._last_progress_time
        start = arrival if arrival > free else free
        return start + self._pending_sizes[pos] / rate

    def drain(self, now: float) -> tuple[np.ndarray, np.ndarray]:
        """Advance the batched server to ``now``; returns the completions.

        Replays exactly what the per-event path would have done between the
        last drain and ``now`` at the current (unchanged) rate: finish the
        carried in-service request at ``last_progress + remaining / rate``,
        then left-fold the pending block — ``start = max(arrival, previous
        completion)``, ``completion = start + size / rate`` — with scalar
        float arithmetic, the very additions the per-request completion
        events performed, hence bit-identical timestamps.  The lifecycle
        columns are written in one vectorised batch per drain (FCFS busy
        runs are short at moderate load, so per-run array operations would
        cost more than they fold).  Returns ``(rids, times)`` in completion
        order; the caller owns the completion log (the runs of several
        servers must be merged by time first).
        """
        if not self.batched:
            raise SimulationError("drain on a per-event task server")
        done_rids: list[int] = []
        done_times: list[float] = []
        rate = self._rate
        free = -np.inf
        # Phase 1: the request carried in service from before this drain.
        if self.in_service is not None:
            if rate <= 0.0:
                return self._empty_drain()
            completion = self._last_progress_time + self._remaining_work / rate
            if completion > now:
                return self._empty_drain()
            rid = self.in_service
            self.ledger.complete_unlogged(rid, completion)
            self.busy_time += completion - self._last_progress_time
            self._last_progress_time = completion
            self.completed_count += 1
            self.in_service = None
            self._remaining_work = 0.0
            done_rids.append(rid)
            done_times.append(completion)
            free = completion
        # Phase 2: left-fold the pending block up to ``now``.  The buffers
        # are indexed in place from the cursor — no per-drain slice copies,
        # so the cluster walk's many tiny drains stay O(consumed) each.
        pos = self._pending_pos
        rids = self._pending_rids
        arrivals = self._pending_arrivals
        sizes = self._pending_sizes
        n = len(rids)
        if pos < n and arrivals[pos] <= now:
            if rate <= 0.0:
                # Zero rate: the head still occupies the service position
                # (frozen until the next re-allocation), later arrivals queue.
                arrival = arrivals[pos]
                start = arrival if arrival > free else free
                rid = rids[pos]
                self.ledger.start_service(rid, start)
                self.in_service = rid
                self._remaining_work = sizes[pos]
                self._last_progress_time = start
                pos += 1
            else:
                starts: list[float] = []
                batch_rids: list[int] = []
                busy = 0.0
                while pos < n:
                    arrival = arrivals[pos]
                    if arrival > now:
                        break
                    start = arrival if arrival > free else free
                    completion = start + sizes[pos] / rate
                    if completion > now:
                        # Mid-service at ``now``: record the start, carry
                        # the remaining work into the next drain.
                        rid = rids[pos]
                        self.ledger.start_service(rid, start)
                        self.in_service = rid
                        self._remaining_work = sizes[pos]
                        self._last_progress_time = start
                        pos += 1
                        break
                    starts.append(start)
                    batch_rids.append(rids[pos])
                    done_times.append(completion)
                    busy += completion - start
                    free = completion
                    pos += 1
                if batch_rids:
                    if len(batch_rids) < _SCALAR_BATCH_LIMIT:
                        ledger = self.ledger
                        offset = len(done_times) - len(batch_rids)
                        for k, batch_rid in enumerate(batch_rids):
                            ledger.start_service(batch_rid, starts[k])
                            ledger.complete_unlogged(batch_rid, done_times[offset + k])
                    else:
                        batch = np.asarray(batch_rids, dtype=np.int64)
                        completions = np.asarray(done_times[-len(batch_rids) :])
                        self.ledger.start_service_batch(batch, np.asarray(starts))
                        self.ledger.complete_batch(batch, completions)
                    self.busy_time += busy
                    self.completed_count += len(batch_rids)
                    done_rids.extend(batch_rids)
                    if self.in_service is None:
                        self._last_progress_time = free
            self._pending_pos = pos
        if not done_rids:
            return self._empty_drain()
        return (
            np.asarray(done_rids, dtype=np.int64),
            np.asarray(done_times, dtype=np.float64),
        )

    def _empty_drain(self) -> tuple[np.ndarray, np.ndarray]:
        return _EMPTY_RIDS, _EMPTY_TIMES

    def set_rate(self, rate: float) -> None:
        """Change the processing rate, rescheduling the in-service request.

        The remaining work of the in-service request is first decreased by
        the progress made at the old rate, then its completion is
        re-scheduled at the new rate.
        """
        require_non_negative(rate, "rate")
        self._account_progress()
        self._rate = float(rate)
        self._reschedule_completion()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _account_progress(self) -> None:
        """Drain the elapsed progress of the in-service request at the old rate."""
        now = self.engine.now
        if self.in_service is not None and self._rate > 0.0:
            elapsed = now - self._last_progress_time
            progress = elapsed * self._rate
            self._remaining_work = max(self._remaining_work - progress, 0.0)
            self.busy_time += elapsed
        self._last_progress_time = now

    def _start_next(self) -> None:
        if self.in_service is not None:
            raise SimulationError("task server started a request while busy")
        if not self.queue:
            return
        rid = self.queue.popleft()
        self.ledger.start_service(rid, self.engine.now)
        self.in_service = rid
        self._remaining_work = self.ledger.size_of(rid)
        self._last_progress_time = self.engine.now
        self._reschedule_completion()

    def _reschedule_completion(self) -> None:
        if self.batched:
            # Batched mode schedules no engine events: the next drain
            # recomputes the completion from (last_progress, remaining, rate).
            return
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if self.in_service is None:
            return
        if self._rate <= 0.0:
            # Zero rate: the request is frozen until the next re-allocation.
            return
        delay = self._remaining_work / self._rate
        self._completion_event = self.engine.schedule_after(
            delay, self._complete_current, label=f"complete-class-{self.class_index}"
        )

    def _complete_current(self) -> None:
        if self.in_service is None:
            raise SimulationError("completion fired on an idle task server")
        self._account_progress()
        if self._remaining_work > 1e-9:
            # A rate change between scheduling and firing left work behind;
            # reschedule instead of completing early.
            self._reschedule_completion()
            return
        rid = self.in_service
        self.ledger.complete(rid, self.engine.now)
        self.in_service = None
        self._completion_event = None
        self._remaining_work = 0.0
        self.completed_count += 1
        if self._on_completion is not None:
            self._on_completion(rid)
        self._start_next()
