"""A rate-scalable FCFS task server.

The paper's simulation model (Fig. 1) dedicates one task server to every
request class: requests of the class wait in a FCFS queue and are served one
at a time at the task server's currently allocated processing rate.  The rate
can change while a request is in service (the rate allocator runs every
estimation window); the server therefore tracks the *remaining work* of the
in-service request and reschedules its completion whenever the rate changes,
exactly as a proportional-share CPU scheduler would.

Since the ledger refactor the server is columnar: its queue holds integer
ledger row ids, lifecycle timestamps are written straight into the
:class:`~repro.simulation.ledger.RequestLedger` columns, and the completion
callback hands back the id.  Standalone :class:`Request` objects are still
accepted by :meth:`submit` (they are interned into the server's ledger), so
object-style call sites keep working.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from ..errors import SimulationError
from ..validation import require_non_negative
from .engine import SimulationEngine
from .ledger import RequestLedger
from .requests import Request

__all__ = ["FcfsTaskServer"]


class FcfsTaskServer:
    """FCFS queue plus a single service position running at a mutable rate.

    Two dispatch modes share the same progress bookkeeping:

    * per-event (default): every completion is an engine event, exactly as
      the paper's Fig. 1 describes the model;
    * batched (``batched=True``): arrivals are pushed in blocks via
      :meth:`submit_batch` and completions are computed in bulk by
      :meth:`drain` — legal because between two rate changes the FCFS run's
      completion times are a deterministic left fold of the arrival block.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        class_index: int,
        rate: float,
        *,
        ledger: RequestLedger | None = None,
        on_completion: Callable[[int], None] | None = None,
        batched: bool = False,
    ) -> None:
        require_non_negative(rate, "rate")
        self.engine = engine
        self.class_index = int(class_index)
        self.ledger = ledger if ledger is not None else RequestLedger()
        self._rate = float(rate)
        self._on_completion = on_completion
        self.batched = bool(batched)
        self.queue: deque[int] = deque()
        self.in_service: int | None = None
        self._remaining_work = 0.0
        self._last_progress_time = 0.0
        self._completion_event = None
        self.busy_time = 0.0
        self.completed_count = 0
        # Batched mode: the pending block (rids + gathered arrival/size
        # columns), consumed from ``_pending_pos`` by successive drains.
        self._pending_rids = np.empty(0, dtype=np.int64)
        self._pending_arrivals = np.empty(0, dtype=np.float64)
        self._pending_sizes = np.empty(0, dtype=np.float64)
        self._pending_pos = 0

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #
    @property
    def rate(self) -> float:
        """The task server's current normalised processing rate."""
        return self._rate

    @property
    def backlog(self) -> int:
        """Requests waiting in queue (not counting the one in service)."""
        if self.batched:
            return self._pending_rids.shape[0] - self._pending_pos
        return len(self.queue)

    @property
    def is_busy(self) -> bool:
        return self.in_service is not None

    def submit(self, request: int | Request) -> None:
        """A request of this class arrived: queue it (and serve it if idle).

        ``request`` is a ledger row id on the hot path; a standalone
        :class:`Request` view is interned into the server's ledger first.
        """
        if self.batched:
            raise SimulationError(
                "per-request submit on a batched task server; use submit_batch"
            )
        rid = self.ledger.resolve(request)
        class_index = self.ledger.class_of(rid)
        if class_index != self.class_index:
            raise SimulationError(
                f"request of class {class_index} submitted to task "
                f"server {self.class_index}"
            )
        self.queue.append(rid)
        if self.in_service is None:
            self._start_next()

    def submit_batch(self, rids: np.ndarray) -> None:
        """Queue a time-ordered block of this class's row ids (batched mode)."""
        if not self.batched:
            raise SimulationError("submit_batch on a per-event task server")
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size == 0:
            return
        pos = self._pending_pos
        if pos < self._pending_rids.shape[0]:
            self._pending_rids = np.concatenate((self._pending_rids[pos:], rids))
            self._pending_arrivals = np.concatenate(
                (self._pending_arrivals[pos:], self.ledger.arrivals_of(rids))
            )
            self._pending_sizes = np.concatenate(
                (self._pending_sizes[pos:], self.ledger.sizes_of(rids))
            )
        else:
            self._pending_rids = rids
            self._pending_arrivals = self.ledger.arrivals_of(rids)
            self._pending_sizes = self.ledger.sizes_of(rids)
        self._pending_pos = 0

    def drain(self, now: float) -> tuple[np.ndarray, np.ndarray]:
        """Advance the batched server to ``now``; returns the completions.

        Replays exactly what the per-event path would have done between the
        last drain and ``now`` at the current (unchanged) rate: finish the
        carried in-service request at ``last_progress + remaining / rate``,
        then left-fold the pending block — ``start = max(arrival, previous
        completion)``, ``completion = start + size / rate`` — with scalar
        float arithmetic, the very additions the per-request completion
        events performed, hence bit-identical timestamps.  The lifecycle
        columns are written in one vectorised batch per drain (FCFS busy
        runs are short at moderate load, so per-run array operations would
        cost more than they fold).  Returns ``(rids, times)`` in completion
        order; the caller owns the completion log (the runs of several
        servers must be merged by time first).
        """
        if not self.batched:
            raise SimulationError("drain on a per-event task server")
        done_rids: list[int] = []
        done_times: list[float] = []
        rate = self._rate
        free = -np.inf
        # Phase 1: the request carried in service from before this drain.
        if self.in_service is not None:
            if rate <= 0.0:
                return self._empty_drain()
            completion = self._last_progress_time + self._remaining_work / rate
            if completion > now:
                return self._empty_drain()
            rid = self.in_service
            self.ledger.complete_unlogged(rid, completion)
            self.busy_time += completion - self._last_progress_time
            self._last_progress_time = completion
            self.completed_count += 1
            self.in_service = None
            self._remaining_work = 0.0
            done_rids.append(rid)
            done_times.append(completion)
            free = completion
        # Phase 2: left-fold the pending block up to ``now``.
        pos = self._pending_pos
        n = self._pending_rids.shape[0]
        if pos < n and self._pending_arrivals[pos] <= now:
            rids = self._pending_rids[pos:].tolist()
            arrivals = self._pending_arrivals[pos:].tolist()
            sizes = self._pending_sizes[pos:].tolist()
            consumed = 0
            if rate <= 0.0:
                # Zero rate: the head still occupies the service position
                # (frozen until the next re-allocation), later arrivals queue.
                arrival = arrivals[0]
                start = arrival if arrival > free else free
                rid = rids[0]
                self.ledger.start_service(rid, start)
                self.in_service = rid
                self._remaining_work = sizes[0]
                self._last_progress_time = start
                consumed = 1
            else:
                starts: list[float] = []
                batch_rids: list[int] = []
                busy = 0.0
                k = len(rids)
                while consumed < k:
                    arrival = arrivals[consumed]
                    if arrival > now:
                        break
                    start = arrival if arrival > free else free
                    completion = start + sizes[consumed] / rate
                    if completion > now:
                        # Mid-service at ``now``: record the start, carry
                        # the remaining work into the next drain.
                        rid = rids[consumed]
                        self.ledger.start_service(rid, start)
                        self.in_service = rid
                        self._remaining_work = sizes[consumed]
                        self._last_progress_time = start
                        consumed += 1
                        break
                    starts.append(start)
                    batch_rids.append(rids[consumed])
                    done_times.append(completion)
                    busy += completion - start
                    free = completion
                    consumed += 1
                if batch_rids:
                    batch = np.asarray(batch_rids, dtype=np.int64)
                    completions = np.asarray(done_times[-len(batch_rids) :])
                    self.ledger.start_service_batch(batch, np.asarray(starts))
                    self.ledger.complete_batch(batch, completions)
                    self.busy_time += busy
                    self.completed_count += len(batch_rids)
                    done_rids.extend(batch_rids)
                    if self.in_service is None:
                        self._last_progress_time = free
            self._pending_pos = pos + consumed
        if not done_rids:
            return self._empty_drain()
        return (
            np.asarray(done_rids, dtype=np.int64),
            np.asarray(done_times, dtype=np.float64),
        )

    def _empty_drain(self) -> tuple[np.ndarray, np.ndarray]:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    def set_rate(self, rate: float) -> None:
        """Change the processing rate, rescheduling the in-service request.

        The remaining work of the in-service request is first decreased by
        the progress made at the old rate, then its completion is
        re-scheduled at the new rate.
        """
        require_non_negative(rate, "rate")
        self._account_progress()
        self._rate = float(rate)
        self._reschedule_completion()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _account_progress(self) -> None:
        """Drain the elapsed progress of the in-service request at the old rate."""
        now = self.engine.now
        if self.in_service is not None and self._rate > 0.0:
            elapsed = now - self._last_progress_time
            progress = elapsed * self._rate
            self._remaining_work = max(self._remaining_work - progress, 0.0)
            self.busy_time += elapsed
        self._last_progress_time = now

    def _start_next(self) -> None:
        if self.in_service is not None:
            raise SimulationError("task server started a request while busy")
        if not self.queue:
            return
        rid = self.queue.popleft()
        self.ledger.start_service(rid, self.engine.now)
        self.in_service = rid
        self._remaining_work = self.ledger.size_of(rid)
        self._last_progress_time = self.engine.now
        self._reschedule_completion()

    def _reschedule_completion(self) -> None:
        if self.batched:
            # Batched mode schedules no engine events: the next drain
            # recomputes the completion from (last_progress, remaining, rate).
            return
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if self.in_service is None:
            return
        if self._rate <= 0.0:
            # Zero rate: the request is frozen until the next re-allocation.
            return
        delay = self._remaining_work / self._rate
        self._completion_event = self.engine.schedule_after(
            delay, self._complete_current, label=f"complete-class-{self.class_index}"
        )

    def _complete_current(self) -> None:
        if self.in_service is None:
            raise SimulationError("completion fired on an idle task server")
        self._account_progress()
        if self._remaining_work > 1e-9:
            # A rate change between scheduling and firing left work behind;
            # reschedule instead of completing early.
            self._reschedule_completion()
            return
        rid = self.in_service
        self.ledger.complete(rid, self.engine.now)
        self.in_service = None
        self._completion_event = None
        self._remaining_work = 0.0
        self.completed_count += 1
        if self._on_completion is not None:
            self._on_completion(rid)
        self._start_next()
