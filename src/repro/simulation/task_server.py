"""A rate-scalable FCFS task server.

The paper's simulation model (Fig. 1) dedicates one task server to every
request class: requests of the class wait in a FCFS queue and are served one
at a time at the task server's currently allocated processing rate.  The rate
can change while a request is in service (the rate allocator runs every
estimation window); the server therefore tracks the *remaining work* of the
in-service request and reschedules its completion whenever the rate changes,
exactly as a proportional-share CPU scheduler would.

Since the ledger refactor the server is columnar: its queue holds integer
ledger row ids, lifecycle timestamps are written straight into the
:class:`~repro.simulation.ledger.RequestLedger` columns, and the completion
callback hands back the id.  Standalone :class:`Request` objects are still
accepted by :meth:`submit` (they are interned into the server's ledger), so
object-style call sites keep working.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from ..errors import SimulationError
from ..validation import require_non_negative
from .engine import SimulationEngine
from .ledger import RequestLedger
from .requests import Request

__all__ = ["FcfsTaskServer"]


class FcfsTaskServer:
    """FCFS queue plus a single service position running at a mutable rate."""

    def __init__(
        self,
        engine: SimulationEngine,
        class_index: int,
        rate: float,
        *,
        ledger: RequestLedger | None = None,
        on_completion: Callable[[int], None] | None = None,
    ) -> None:
        require_non_negative(rate, "rate")
        self.engine = engine
        self.class_index = int(class_index)
        self.ledger = ledger if ledger is not None else RequestLedger()
        self._rate = float(rate)
        self._on_completion = on_completion
        self.queue: deque[int] = deque()
        self.in_service: int | None = None
        self._remaining_work = 0.0
        self._last_progress_time = 0.0
        self._completion_event = None
        self.busy_time = 0.0
        self.completed_count = 0

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #
    @property
    def rate(self) -> float:
        """The task server's current normalised processing rate."""
        return self._rate

    @property
    def backlog(self) -> int:
        """Requests waiting in queue (not counting the one in service)."""
        return len(self.queue)

    @property
    def is_busy(self) -> bool:
        return self.in_service is not None

    def submit(self, request: int | Request) -> None:
        """A request of this class arrived: queue it (and serve it if idle).

        ``request`` is a ledger row id on the hot path; a standalone
        :class:`Request` view is interned into the server's ledger first.
        """
        rid = self.ledger.resolve(request)
        class_index = self.ledger.class_of(rid)
        if class_index != self.class_index:
            raise SimulationError(
                f"request of class {class_index} submitted to task "
                f"server {self.class_index}"
            )
        self.queue.append(rid)
        if self.in_service is None:
            self._start_next()

    def set_rate(self, rate: float) -> None:
        """Change the processing rate, rescheduling the in-service request.

        The remaining work of the in-service request is first decreased by
        the progress made at the old rate, then its completion is
        re-scheduled at the new rate.
        """
        require_non_negative(rate, "rate")
        self._account_progress()
        self._rate = float(rate)
        self._reschedule_completion()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _account_progress(self) -> None:
        """Drain the elapsed progress of the in-service request at the old rate."""
        now = self.engine.now
        if self.in_service is not None and self._rate > 0.0:
            elapsed = now - self._last_progress_time
            progress = elapsed * self._rate
            self._remaining_work = max(self._remaining_work - progress, 0.0)
            self.busy_time += elapsed
        self._last_progress_time = now

    def _start_next(self) -> None:
        if self.in_service is not None:
            raise SimulationError("task server started a request while busy")
        if not self.queue:
            return
        rid = self.queue.popleft()
        self.ledger.start_service(rid, self.engine.now)
        self.in_service = rid
        self._remaining_work = self.ledger.size_of(rid)
        self._last_progress_time = self.engine.now
        self._reschedule_completion()

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if self.in_service is None:
            return
        if self._rate <= 0.0:
            # Zero rate: the request is frozen until the next re-allocation.
            return
        delay = self._remaining_work / self._rate
        self._completion_event = self.engine.schedule_after(
            delay, self._complete_current, label=f"complete-class-{self.class_index}"
        )

    def _complete_current(self) -> None:
        if self.in_service is None:
            raise SimulationError("completion fired on an idle task server")
        self._account_progress()
        if self._remaining_work > 1e-9:
            # A rate change between scheduling and firing left work behind;
            # reschedule instead of completing early.
            self._reschedule_completion()
            return
        rid = self.in_service
        self.ledger.complete(rid, self.engine.now)
        self.in_service = None
        self._completion_event = None
        self._remaining_work = 0.0
        self.completed_count += 1
        if self._on_completion is not None:
            self._on_completion(rid)
        self._start_next()
