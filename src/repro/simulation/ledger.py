"""The columnar request store: a struct-of-arrays ledger of request lifecycles.

The measurement protocol of the paper is aggregate by construction —
per-window, per-class mean slowdowns over tens of thousands of time units —
so nothing in the pipeline ever needs a per-request Python object.
:class:`RequestLedger` therefore stores every request as one *row* across a
set of preallocated, geometrically grown NumPy columns

    ``request_id | class_index | arrival_time | size |
    service_start_time | completion_time | disposition``

and the whole simulation stack addresses requests by integer row id:
:class:`~repro.simulation.scenario.Scenario` appends a row per arrival, the
server models queue and serve row ids, and the monitor/trace layer computes
every statistic with vectorised NumPy over the columns.

The ``disposition`` column records each request's admission outcome
(:data:`DISPOSITION_ADMITTED` / :data:`DISPOSITION_DEGRADED` /
:data:`DISPOSITION_SHED`, matching the integer values of
:class:`repro.core.AdmissionDecision`): shed requests get a row — so shed
fractions fall out of the same columns as every other statistic — but are
never submitted to a server and never start service (enforced here).
Degraded rows are stored under their downgraded class and otherwise live a
normal lifecycle.

Lifecycle invariants (a request starts service exactly once, at or after its
arrival; completes exactly once, at or after its service start) are enforced
here, in one place, exactly as the old per-object ``Request`` methods did.
Completions are additionally logged in completion order (`completed_ids`),
which is what makes the vectorised window statistics bit-identical to the
old per-completion bookkeeping: simulated time is monotone, so the logged
completion times are already sorted.

``Request`` (see :mod:`repro.simulation.requests`) remains available as a
thin lazy *view* over a ledger row — nothing in the hot path allocates one,
but call sites that want object ergonomics (tests, examples, the ``extra``
escape hatch) keep working.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SimulationError

__all__ = [
    "RequestLedger",
    "DISPOSITION_ADMITTED",
    "DISPOSITION_DEGRADED",
    "DISPOSITION_SHED",
]

#: Admission outcome codes stored in the ``disposition`` column.  The values
#: match :class:`repro.core.AdmissionDecision` so decision blocks cast
#: straight into the column.
DISPOSITION_ADMITTED = 0
DISPOSITION_DEGRADED = 1
DISPOSITION_SHED = 2

#: Initial number of rows allocated by a fresh ledger; grown 2x on demand.
DEFAULT_CAPACITY = 1024

#: Tolerance absorbing float drift in lifecycle timestamps (same contract as
#: the engine's ``schedule_at``).
_TIME_TOL = 1e-12


class RequestLedger:
    """Struct-of-arrays store for every request of one simulation run.

    Parameters
    ----------
    num_classes:
        When given, ``append`` validates class indices against this bound
        (the scenario always passes it; standalone ledgers may omit it).
    capacity:
        Initial row allocation; the columns grow geometrically (2x) when
        exceeded, so ids stay stable across growth.
    """

    __slots__ = (
        "num_classes",
        "_n",
        "_request_id",
        "_class_index",
        "_arrival_time",
        "_size",
        "_service_start",
        "_completion",
        "_disposition",
        "_completed",
        "_order",
        "_extra",
        "_buffer_owner",
    )

    def __init__(self, num_classes: int | None = None, *, capacity: int = DEFAULT_CAPACITY) -> None:
        if num_classes is not None and num_classes <= 0:
            raise SimulationError("num_classes must be > 0")
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.num_classes = None if num_classes is None else int(num_classes)
        self._n = 0
        self._completed = 0
        # The lifecycle columns are NaN-filled and the labels default-filled
        # (label = row id) at allocation time, so the per-arrival append only
        # touches the three columns that actually vary.
        self._request_id = np.arange(capacity, dtype=np.int64)
        self._class_index = np.empty(capacity, dtype=np.int64)
        self._arrival_time = np.empty(capacity, dtype=np.float64)
        self._size = np.empty(capacity, dtype=np.float64)
        self._service_start = np.full(capacity, math.nan, dtype=np.float64)
        self._completion = np.full(capacity, math.nan, dtype=np.float64)
        self._disposition = np.zeros(capacity, dtype=np.uint8)
        self._order = np.empty(capacity, dtype=np.int64)
        self._extra: dict[int, dict] = {}
        # Opaque keep-alive for zero-copy transports: when the columns are
        # views into a shared-memory segment, the decoder parks the segment's
        # owner here so the mapping outlives the ledger.  Never pickled.
        self._buffer_owner = None

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        """Currently allocated rows (grows on demand; ids never move)."""
        return self._request_id.shape[0]

    @property
    def num_completed(self) -> int:
        return self._completed

    # ------------------------------------------------------------------ #
    # Column views (trimmed to the live rows; treat as read-only)
    # ------------------------------------------------------------------ #
    def _view(self, column: np.ndarray, length: int) -> np.ndarray:
        view = column[:length]
        view.flags.writeable = False
        return view

    @property
    def request_id(self) -> np.ndarray:
        """External labels, one per row (defaults to the row id itself)."""
        return self._view(self._request_id, self._n)

    @property
    def class_index(self) -> np.ndarray:
        return self._view(self._class_index, self._n)

    @property
    def arrival_time(self) -> np.ndarray:
        return self._view(self._arrival_time, self._n)

    @property
    def size(self) -> np.ndarray:
        return self._view(self._size, self._n)

    @property
    def service_start_time(self) -> np.ndarray:
        return self._view(self._service_start, self._n)

    @property
    def completion_time(self) -> np.ndarray:
        return self._view(self._completion, self._n)

    @property
    def disposition(self) -> np.ndarray:
        """Admission outcome per row (``DISPOSITION_*`` codes; 0 = admitted)."""
        return self._view(self._disposition, self._n)

    @property
    def completed_ids(self) -> np.ndarray:
        """Row ids of completed requests, in completion (= time) order."""
        return self._view(self._order, self._completed)

    # ------------------------------------------------------------------ #
    # Scalar accessors (hot path)
    # ------------------------------------------------------------------ #
    def class_of(self, rid: int) -> int:
        return int(self._class_index[rid])

    def size_of(self, rid: int) -> float:
        return float(self._size[rid])

    def arrival_of(self, rid: int) -> float:
        return float(self._arrival_time[rid])

    def start_of(self, rid: int) -> float:
        return float(self._service_start[rid])

    def completion_of(self, rid: int) -> float:
        return float(self._completion[rid])

    def label_of(self, rid: int) -> int:
        return int(self._request_id[rid])

    def disposition_of(self, rid: int) -> int:
        return int(self._disposition[rid])

    def is_complete(self, rid: int) -> bool:
        return not math.isnan(self._completion[rid])

    # ------------------------------------------------------------------ #
    # Appending rows
    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        old_capacity = self.capacity
        new_capacity = max(old_capacity * 2, 16)
        for name in (
            "_request_id",
            "_class_index",
            "_arrival_time",
            "_size",
            "_service_start",
            "_completion",
            "_disposition",
            "_order",
        ):
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            # Column lengths can differ after unpickling (the completion log
            # is padded independently), so copy each column's own length.
            grown[: old.shape[0]] = old
            setattr(self, name, grown)
        # Restore the allocation-time defaults on the fresh tail.
        self._request_id[old_capacity:] = np.arange(old_capacity, new_capacity)
        self._service_start[old_capacity:] = math.nan
        self._completion[old_capacity:] = math.nan
        self._disposition[old_capacity:] = DISPOSITION_ADMITTED

    def append_batch(
        self,
        classes: np.ndarray,
        arrivals: np.ndarray,
        sizes: np.ndarray,
        *,
        request_ids: np.ndarray | None = None,
        dispositions: np.ndarray | None = None,
    ) -> np.ndarray:
        """Record a block of arrivals in one call; returns the new row ids.

        The batched equivalent of :meth:`append`: one bounds check for the
        whole block, growth amortised across it (the columns may grow
        mid-batch, ids stay stable), and one slice write per column.  The
        class bound is validated *before* any column is touched, so an
        out-of-range class index rejects the whole block — no partial
        append.  Row ids are assigned contiguously, so ``append`` and
        ``append_batch`` interleave freely.
        """
        classes = np.asarray(classes, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        sizes = np.asarray(sizes, dtype=np.float64)
        if classes.ndim != 1 or arrivals.shape != classes.shape or sizes.shape != classes.shape:
            raise SimulationError(
                "append_batch needs one-dimensional classes/arrivals/sizes of equal length"
            )
        k = classes.shape[0]
        rid0 = self._n
        if k == 0:
            return np.empty(0, dtype=np.int64)
        if classes.min() < 0 or (
            self.num_classes is not None and classes.max() >= self.num_classes
        ):
            bound = "inf" if self.num_classes is None else self.num_classes
            raise SimulationError(
                f"append_batch: request class out of range [0, {bound}); "
                f"no rows were appended"
            )
        while rid0 + k > self.capacity:
            self._grow()
        self._class_index[rid0 : rid0 + k] = classes
        self._arrival_time[rid0 : rid0 + k] = arrivals
        self._size[rid0 : rid0 + k] = sizes
        if request_ids is not None:
            self._request_id[rid0 : rid0 + k] = np.asarray(request_ids, dtype=np.int64)
        if dispositions is not None:
            self._disposition[rid0 : rid0 + k] = np.asarray(dispositions, dtype=np.uint8)
        self._n = rid0 + k
        return np.arange(rid0, rid0 + k, dtype=np.int64)

    def arrivals_of(self, rids: np.ndarray) -> np.ndarray:
        """Arrival times of a block of row ids (vectorised gather)."""
        return self._arrival_time[rids]

    def sizes_of(self, rids: np.ndarray) -> np.ndarray:
        """Sizes of a block of row ids (vectorised gather)."""
        return self._size[rids]

    def classes_of(self, rids: np.ndarray) -> np.ndarray:
        """Class indices of a block of row ids (vectorised gather)."""
        return self._class_index[rids]

    def append(
        self,
        class_index: int,
        arrival_time: float,
        size: float,
        *,
        request_id: int | None = None,
        disposition: int = DISPOSITION_ADMITTED,
    ) -> int:
        """Record one arrival; returns the new row id."""
        class_index = int(class_index)
        if class_index < 0 or (self.num_classes is not None and class_index >= self.num_classes):
            bound = "inf" if self.num_classes is None else self.num_classes
            raise SimulationError(f"request class {class_index} out of range [0, {bound})")
        rid = self._n
        if rid == self.capacity:
            self._grow()
        if request_id is not None:
            self._request_id[rid] = int(request_id)
        if disposition:
            self._disposition[rid] = disposition
        self._class_index[rid] = class_index
        self._arrival_time[rid] = arrival_time
        self._size[rid] = size
        self._n = rid + 1
        return rid

    def resolve(self, request) -> int:
        """Normalise a submit-style argument — row id or ``Request`` view —
        to a row id in this ledger (views are interned).  The single home of
        the id-or-object check every server model's ``submit`` performs."""
        if isinstance(request, (int, np.integer)):
            return int(request)
        return self.intern(request)

    def intern(self, request) -> int:
        """Adopt a foreign :class:`Request` into this ledger.

        The request's full lifecycle state (including any ``extra`` payload)
        is copied into a fresh row and the request object is re-bound so it
        becomes a live view of that row; the new row id is returned.  A
        request already backed by this ledger is returned unchanged.
        """
        if request.ledger is self:
            return request.row
        source, old_row = request.ledger, request.row
        rid = self.append(
            request.class_index,
            request.arrival_time,
            request.size,
            request_id=request.request_id,
            disposition=int(source._disposition[old_row]),
        )
        # Copy lifecycle columns verbatim — the source row already satisfied
        # the invariants (or was constructed with explicit values, exactly
        # like the old mutable dataclass allowed).
        self.adopt_lifecycle(rid, source._service_start[old_row], source._completion[old_row])
        extra = source._extra.get(old_row)
        if extra:
            self._extra[rid] = extra
        request._rebind(self, rid)
        return rid

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def adopt_lifecycle(self, rid: int, service_start: float, completion: float) -> None:
        """Write a row's lifecycle timestamps verbatim, without invariant checks.

        The single home of the "set both columns, log the completion" step
        shared by :meth:`intern` and explicit :class:`Request` construction
        (which mirror the old mutable dataclass, where any lifecycle state
        could be assembled directly).  ``NaN`` means not-yet-happened; a
        non-NaN ``completion`` is appended to the completion log.
        """
        self._service_start[rid] = service_start
        self._completion[rid] = completion
        if not math.isnan(completion):
            self._order[self._completed] = rid
            self._completed += 1

    def start_service(self, rid: int, time: float) -> None:
        if self._disposition[rid] == DISPOSITION_SHED:
            raise SimulationError(
                f"request {self.label_of(rid)} was shed and can never enter service"
            )
        if not math.isnan(self._service_start[rid]):
            raise SimulationError(f"request {self.label_of(rid)} started service twice")
        if time < self._arrival_time[rid] - _TIME_TOL:
            raise SimulationError(f"request {self.label_of(rid)} started service before arriving")
        self._service_start[rid] = time

    def complete(self, rid: int, time: float) -> None:
        if math.isnan(self._service_start[rid]):
            raise SimulationError(
                f"request {self.label_of(rid)} completed without starting service"
            )
        if not math.isnan(self._completion[rid]):
            raise SimulationError(f"request {self.label_of(rid)} completed twice")
        if time < self._service_start[rid] - _TIME_TOL:
            raise SimulationError(f"request {self.label_of(rid)} completed before service started")
        self._completion[rid] = time
        self._order[self._completed] = rid
        self._completed += 1

    def complete_unlogged(self, rid: int, time: float) -> None:
        """:meth:`complete` without the completion-order log entry.

        Batched server drains use this (and :meth:`complete_batch`) so the
        scenario can merge several servers' runs by time before recording
        the global order via :meth:`log_completions`.
        """
        if math.isnan(self._service_start[rid]):
            raise SimulationError(
                f"request {self.label_of(rid)} completed without starting service"
            )
        if not math.isnan(self._completion[rid]):
            raise SimulationError(f"request {self.label_of(rid)} completed twice")
        if time < self._service_start[rid] - _TIME_TOL:
            raise SimulationError(f"request {self.label_of(rid)} completed before service started")
        self._completion[rid] = time

    def start_service_batch(self, rids: np.ndarray, times: np.ndarray) -> None:
        """Vectorised :meth:`start_service` for a block of rows.

        The same invariants are enforced (once per block): no row may start
        twice, and no start may precede its arrival beyond the time
        tolerance.  On violation nothing is written.
        """
        rids = np.asarray(rids, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if rids.size == 0:
            return
        if np.any(self._disposition[rids] == DISPOSITION_SHED):
            raise SimulationError(
                "start_service_batch: a shed request can never enter service"
            )
        if not np.all(np.isnan(self._service_start[rids])):
            raise SimulationError("start_service_batch: a request started service twice")
        if np.any(times < self._arrival_time[rids] - _TIME_TOL):
            raise SimulationError("start_service_batch: a request started before arriving")
        self._service_start[rids] = times

    def complete_batch(self, rids: np.ndarray, times: np.ndarray) -> None:
        """Vectorised :meth:`complete` *without* the completion-order log.

        Batched server drains complete whole runs per server; the global
        completion log must stay time-sorted across servers, so the caller
        merges the per-server runs by time and records the merged order via
        :meth:`log_completions` — always pair the two calls.
        """
        rids = np.asarray(rids, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if rids.size == 0:
            return
        starts = self._service_start[rids]
        if np.any(np.isnan(starts)):
            raise SimulationError("complete_batch: a request completed without starting service")
        if not np.all(np.isnan(self._completion[rids])):
            raise SimulationError("complete_batch: a request completed twice")
        if np.any(times < starts - _TIME_TOL):
            raise SimulationError("complete_batch: a request completed before service started")
        self._completion[rids] = times

    def log_completions(self, rids: np.ndarray) -> None:
        """Append a time-sorted block of completed rows to the completion log.

        The companion of :meth:`complete_batch`.  The log is the backbone of
        every vectorised window statistic, which assumes (and here verifies)
        that logged completion times never decrease.
        """
        rids = np.asarray(rids, dtype=np.int64)
        k = rids.shape[0]
        if k == 0:
            return
        times = self._completion[rids]
        if np.any(np.isnan(times)):
            raise SimulationError("log_completions: a row has no completion time")
        previous = (
            -math.inf
            if self._completed == 0
            else float(self._completion[self._order[self._completed - 1]])
        )
        if times[0] < previous or np.any(np.diff(times) < 0.0):
            raise SimulationError("log_completions: completion times out of order")
        self._order[self._completed : self._completed + k] = rids
        self._completed += k

    # ------------------------------------------------------------------ #
    # Escape hatch and views
    # ------------------------------------------------------------------ #
    def extra(self, rid: int) -> dict:
        """Per-request side-channel dict, created lazily (rarely used)."""
        extra = self._extra.get(rid)
        if extra is None:
            extra = self._extra[rid] = {}
        return extra

    def view(self, rid: int):
        """A lazy :class:`~repro.simulation.requests.Request` over one row."""
        from .requests import Request

        if not (0 <= rid < self._n):
            raise SimulationError(f"row {rid} out of range [0, {self._n})")
        return Request.view(self, rid)

    # ------------------------------------------------------------------ #
    # Vectorised derived metrics
    # ------------------------------------------------------------------ #
    def slowdowns(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Paper slowdowns (delay over actual service duration) for ``ids``
        (default: every completed request, in completion order)."""
        if ids is None:
            ids = self.completed_ids
        start = self._service_start[ids]
        return (start - self._arrival_time[ids]) / (self._completion[ids] - start)

    def waiting_times(self, ids: np.ndarray | None = None) -> np.ndarray:
        if ids is None:
            ids = self.completed_ids
        return self._service_start[ids] - self._arrival_time[ids]

    # ------------------------------------------------------------------ #
    # Compact pickling: only the live rows cross process boundaries
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        n, m = self._n, self._completed
        return {
            "num_classes": self.num_classes,
            "request_id": self._request_id[:n].copy(),
            "class_index": self._class_index[:n].copy(),
            "arrival_time": self._arrival_time[:n].copy(),
            "size": self._size[:n].copy(),
            "service_start": self._service_start[:n].copy(),
            "completion": self._completion[:n].copy(),
            "disposition": self._disposition[:n].copy(),
            "order": self._order[:m].copy(),
            "extra": self._extra,
        }

    def __setstate__(self, state: dict) -> None:
        self.num_classes = state["num_classes"]
        self._request_id = state["request_id"]
        self._class_index = state["class_index"]
        self._arrival_time = state["arrival_time"]
        self._size = state["size"]
        self._service_start = state["service_start"]
        self._completion = state["completion"]
        self._n = int(self._request_id.shape[0])
        # Ledgers pickled before the disposition column existed load as
        # all-admitted.
        disposition = state.get("disposition")
        if disposition is None:
            disposition = np.zeros(self._n, dtype=np.uint8)
        self._disposition = disposition
        self._completed = int(state["order"].shape[0])
        # Pad the completion log back to full capacity so rows that were
        # in flight when the ledger was pickled can still complete.
        order = np.empty(max(self._n, 1), dtype=np.int64)
        order[: self._completed] = state["order"]
        self._order = order
        self._extra = state["extra"]
        self._buffer_owner = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestLedger(rows={self._n}, completed={self._completed}, "
            f"capacity={self.capacity}, num_classes={self.num_classes})"
        )
