"""Per-class request generators.

Each generator produces a Poisson arrival stream (exponential inter-arrival
times) of requests whose sizes are drawn from the class's service-time
distribution — the ``M/G_B/1`` traffic model of the paper when the size
distribution is Bounded Pareto.  Deterministic and trace-driven variants are
provided for tests and for replaying recorded workloads.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Sequence

import numpy as np

from ..distributions.base import Distribution
from ..errors import ParameterError
from ..types import TrafficClass
from ..validation import require_non_negative, require_positive

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "RequestSource",
    "TraceSource",
    "sources_from_classes",
]


class ArrivalProcess(abc.ABC):
    """Produces successive inter-arrival times."""

    @abc.abstractmethod
    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Time until the next arrival (strictly positive)."""


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival times with the given rate (Poisson process)."""

    def __init__(self, rate: float) -> None:
        require_non_negative(rate, "rate")
        self.rate = float(rate)

    def next_interarrival(self, rng: np.random.Generator) -> float:
        if self.rate == 0.0:
            return float("inf")
        return float(rng.exponential(1.0 / self.rate))


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals (used in tests for exact, noise-free scenarios)."""

    def __init__(self, interval: float) -> None:
        require_positive(interval, "interval")
        self.interval = float(interval)

    def next_interarrival(self, rng: np.random.Generator) -> float:
        return self.interval


class RequestSource:
    """A stream of (inter-arrival, size) pairs for one traffic class."""

    def __init__(
        self,
        class_index: int,
        arrivals: ArrivalProcess,
        sizes: Distribution,
        rng: np.random.Generator,
    ) -> None:
        if class_index < 0:
            raise ParameterError("class_index must be >= 0")
        self.class_index = int(class_index)
        self.arrivals = arrivals
        self.sizes = sizes
        self.rng = rng
        # Carried arrival of the batched path: the next arrival's absolute
        # time has been drawn but its size has not (mirroring the per-event
        # protocol, where the gap is drawn one event ahead of the size).
        self._block_next_time: float | None = None

    def next_interarrival(self) -> float:
        return self.arrivals.next_interarrival(self.rng)

    def next_size(self) -> float:
        size = float(self.sizes.sample(self.rng))
        if size <= 0.0:
            raise ParameterError(f"size distribution produced a non-positive sample {size!r}")
        return size

    def draw_block(self, bound: float, *, inclusive: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Pre-draw every arrival strictly before ``bound`` (``<=`` if
        ``inclusive``); returns ``(times, sizes)`` as float64 arrays.

        Draw order matches the per-event protocol exactly — gap first, then
        alternating size/gap — so the generator's RNG state after a sequence
        of blocks is bit-identical to the per-event stream at the same
        arrival count.  The one gap drawn past the bound is carried into the
        next block (its size is not drawn until the arrival is released),
        so successive calls with increasing bounds tile the timeline without
        consuming extra randomness.
        """
        times: list[float] = []
        sizes: list[float] = []
        t = self._block_next_time
        if t is None:
            gap = self.next_interarrival()
            t = 0.0 + gap if math.isfinite(gap) else math.inf
        while t < bound or (inclusive and t == bound):
            sizes.append(self.next_size())
            times.append(t)
            gap = self.next_interarrival()
            t = t + gap if math.isfinite(gap) else math.inf
        self._block_next_time = t
        return (
            np.asarray(times, dtype=np.float64),
            np.asarray(sizes, dtype=np.float64),
        )


class TraceSource(RequestSource):
    """Replays a recorded sequence of (inter-arrival, size) pairs.

    The trace is held as two NumPy arrays and replayed by cursor — an
    ``np.float64`` array passed in is used as-is (no per-element Python
    objects are ever materialised), so million-request arrival logs loaded
    with :func:`~repro.simulation.trace_io.load_trace` replay without a
    memory spike.  Any other sequence is converted once via ``np.asarray``.

    Once the trace is exhausted the source reports an infinite inter-arrival
    time, which effectively switches the class off.
    """

    def __init__(
        self,
        class_index: int,
        interarrivals: Sequence[float] | np.ndarray,
        sizes: Sequence[float] | np.ndarray,
    ) -> None:
        if class_index < 0:
            raise ParameterError("class_index must be >= 0")
        gaps = np.asarray(interarrivals, dtype=float)
        demand = np.asarray(sizes, dtype=float)
        if gaps.ndim != 1 or demand.ndim != 1:
            raise ParameterError("interarrivals and sizes must be one-dimensional")
        if gaps.shape != demand.shape:
            raise ParameterError("interarrivals and sizes must have the same length")
        if gaps.size and (not np.all(np.isfinite(gaps)) or gaps.min() < 0.0):
            raise ParameterError("interarrivals must be finite and >= 0")
        if demand.size and (not np.all(np.isfinite(demand)) or demand.min() <= 0.0):
            raise ParameterError("sizes must be finite and > 0")
        self.class_index = int(class_index)
        self._interarrivals = gaps
        self._sizes = demand
        self._position = 0
        self._pending_size: float | None = None
        self._absolute_times: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self._interarrivals.size)

    @property
    def remaining(self) -> int:
        """Requests of the trace not yet replayed."""
        return len(self) - self._position

    def next_interarrival(self) -> float:
        if self._position >= self._interarrivals.size:
            self._pending_size = None
            return float("inf")
        gap = float(self._interarrivals[self._position])
        self._pending_size = float(self._sizes[self._position])
        self._position += 1
        return gap

    def next_size(self) -> float:
        if self._pending_size is None:
            raise ParameterError("trace exhausted: no size available")
        size = self._pending_size
        self._pending_size = None
        return size

    def draw_block(self, bound: float, *, inclusive: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised block replay: one ``searchsorted`` instead of a cursor
        loop.  The absolute arrival times are the running sum of the gaps —
        ``np.cumsum`` is the same left-to-right fold the per-event replay
        performs, so the times are bit-identical.
        """
        if self._pending_size is not None:
            raise ParameterError(
                "cannot mix per-event and block replay of the same trace source"
            )
        if self._absolute_times is None:
            self._absolute_times = np.cumsum(self._interarrivals)
        side = "right" if inclusive else "left"
        end = int(np.searchsorted(self._absolute_times, bound, side=side))
        start = self._position
        if end <= start:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
        self._position = end
        return self._absolute_times[start:end], self._sizes[start:end]


def sources_from_classes(
    classes: Sequence[TrafficClass], rngs: Sequence[np.random.Generator]
) -> list[RequestSource]:
    """One Poisson request source per traffic class, each on its own RNG stream."""
    if len(classes) != len(rngs):
        raise ParameterError("classes and rngs must have the same length")
    return [
        RequestSource(i, PoissonArrivals(cls.arrival_rate), cls.service, rng)
        for i, (cls, rng) in enumerate(zip(classes, rngs))
    ]
