"""Multi-replication orchestration, serial or parallel.

Every data point in the paper is an average over 100 independent runs.
:class:`ReplicationRunner` spawns one child seed per replication (so
replications are independent and reproducible), executes a caller-supplied
simulation factory for each — serially or across ``workers`` forked
processes — and aggregates per-class slowdowns and slowdown ratios with
standard errors and normal-approximation confidence intervals.

Determinism contract: the child seeds are spawned once, in replication
order, from ``base_seed`` (``spawn_seed_sequences(base_seed, replications)``)
and the per-replication results are re-assembled in replication order before
aggregation.  A run with ``workers=N`` therefore produces *bit-for-bit* the
same :class:`ReplicationSummary` statistics as ``workers=1`` for the same
``base_seed``, regardless of worker count or completion order.

Parallel execution uses ``fork``-start multiprocessing so that arbitrary
build closures (the common idiom throughout the experiments) need not be
picklable; on platforms without ``fork`` the runner silently degrades to
serial execution, preserving results exactly.  Note that in parallel mode
any mutation the build callable performs on enclosing state happens in the
child process and is *not* visible to the parent — return everything you
need through the :class:`SimulationResult`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import queue as queue_module
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..distributions.rng import spawn_seed_sequences
from ..errors import SimulationError
from .scenario import SimulationResult

__all__ = [
    "ReplicationRunner",
    "ReplicationSummary",
    "ReplicatedStatistic",
    "run_replications",
    "summarise_replications",
]

#: A build callable: ``build(replication_index, seed_sequence)`` constructs,
#: runs and returns one :class:`SimulationResult`.
BuildFn = Callable[[int, np.random.SeedSequence], SimulationResult]


@dataclass(frozen=True)
class ReplicatedStatistic:
    """Mean, standard deviation and a 95% confidence half-width across replications."""

    mean: float
    std: float
    half_width_95: float
    n: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "ReplicatedStatistic":
        arr = np.asarray([s for s in samples if not math.isnan(s)], dtype=float)
        if arr.size == 0:
            return cls(float("nan"), float("nan"), float("nan"), 0)
        mean = float(np.mean(arr))
        std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
        half = 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0
        return cls(mean, std, half, int(arr.size))


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregated output of a batch of replications."""

    per_class_slowdowns: tuple[ReplicatedStatistic, ...]
    system_slowdown: ReplicatedStatistic
    ratios_to_first: tuple[ReplicatedStatistic, ...]
    results: tuple[SimulationResult, ...]

    @property
    def mean_slowdowns(self) -> tuple[float, ...]:
        return tuple(s.mean for s in self.per_class_slowdowns)

    @property
    def mean_ratios_to_first(self) -> tuple[float, ...]:
        """Mean over replications of each replication's own slowdown ratios.

        Heavy-tailed workloads make this estimator noisy (a replication with
        an unusually small class-1 slowdown dominates); prefer
        :attr:`ratio_of_mean_slowdowns` when a single robust ratio is needed.
        """
        return tuple(s.mean for s in self.ratios_to_first)

    @property
    def ratio_of_mean_slowdowns(self) -> tuple[float, ...]:
        """Ratios of the replication-averaged slowdowns to class 1's."""
        means = self.mean_slowdowns
        return tuple(m / means[0] for m in means)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _worker(
    build: BuildFn,
    seeds: Sequence[np.random.SeedSequence],
    indices: Sequence[int],
    out: "multiprocessing.Queue",
) -> None:
    """Run a contiguous-by-stride slice of replications in a forked child.

    Results are pre-pickled inside the try block: the queue's feeder thread
    serialises asynchronously, so an unpicklable result would otherwise be
    dropped silently and surface as an uninformative dead-worker error.
    KeyboardInterrupt/SystemExit are deliberately not caught — they kill the
    child, which the parent's dead-worker check reports.
    """
    for index in indices:
        try:
            payload = pickle.dumps(build(index, seeds[index]))
        except Exception:
            out.put((index, None, traceback.format_exc()))
            return
        out.put((index, payload, None))


@dataclass(frozen=True)
class ReplicationRunner:
    """Runs N independent replications and aggregates their statistics.

    Parameters
    ----------
    replications:
        Number of independent simulation runs.
    base_seed:
        Root of the seed tree; one child ``SeedSequence`` is spawned per
        replication, in replication order.
    workers:
        ``1`` (default) runs serially in-process.  ``N > 1`` forks ``N``
        worker processes, each executing a deterministic slice of the
        replication indices.  ``0`` or ``None`` auto-sizes to the CPU count;
        negative values are rejected.  The aggregated summary is bit-for-bit
        identical for every value.

    Error contract: an exception raised by ``build`` propagates unchanged in
    serial mode; in parallel mode it surfaces as a :class:`SimulationError`
    carrying the failing replication index and the child's traceback (the
    original exception object cannot cross the process boundary reliably).
    """

    replications: int
    base_seed: int | np.random.SeedSequence | None = 0
    workers: int | None = 1

    def resolved_workers(self) -> int:
        """The number of worker processes a :meth:`run` call will use."""
        if self.workers is not None and self.workers < 0:
            raise SimulationError(f"workers must be >= 0, got {self.workers}")
        if self.workers is None or self.workers == 0:
            if hasattr(os, "sched_getaffinity"):
                limit = len(os.sched_getaffinity(0)) or 1
            else:  # pragma: no cover - non-Linux
                limit = os.cpu_count() or 1
        else:
            limit = self.workers
        return max(1, min(limit, self.replications))

    def run(self, build: BuildFn) -> ReplicationSummary:
        """Execute ``build`` for every replication and aggregate the results."""
        return summarise_replications(self.run_raw(build))

    def run_raw(self, build: BuildFn) -> list[SimulationResult]:
        """Execute every replication and return the results in index order."""
        if self.replications <= 0:
            raise SimulationError("replications must be > 0")
        seeds = spawn_seed_sequences(self.base_seed, self.replications)
        workers = self.resolved_workers()
        if workers <= 1 or not _fork_available():
            return [build(i, seed) for i, seed in enumerate(seeds)]
        return self._run_parallel(build, seeds, workers)

    # ------------------------------------------------------------------ #
    # Parallel execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_parallel(
        build: BuildFn, seeds: list[np.random.SeedSequence], workers: int
    ) -> list[SimulationResult]:
        ctx = multiprocessing.get_context("fork")
        out: multiprocessing.Queue = ctx.Queue()
        # Strided slices balance heterogeneous replication costs and are a
        # pure function of (replications, workers) — never of timing.
        slices = [list(range(start, len(seeds), workers)) for start in range(workers)]
        processes = [
            ctx.Process(target=_worker, args=(build, seeds, indices, out), daemon=True)
            for indices in slices
            if indices
        ]
        for process in processes:
            process.start()
        results: list[SimulationResult | None] = [None] * len(seeds)
        failure: tuple[int, str] | None = None
        remaining = len(seeds)
        try:
            while remaining and failure is None:
                try:
                    index, result, error = out.get(timeout=1.0)
                except queue_module.Empty:
                    if not any(p.is_alive() for p in processes) and out.empty():
                        raise SimulationError(
                            "a replication worker died without reporting a result"
                        ) from None
                    continue
                remaining -= 1
                if error is not None:
                    failure = (index, error)
                else:
                    results[index] = pickle.loads(result)
        finally:
            if failure is not None or remaining:
                for process in processes:
                    process.terminate()
            for process in processes:
                process.join()
        if failure is not None:
            index, error = failure
            raise SimulationError(
                f"replication {index} failed in a worker process:\n{error}"
            )
        return results  # type: ignore[return-value]


def run_replications(
    build: BuildFn,
    *,
    replications: int,
    base_seed: int | np.random.SeedSequence | None = 0,
    workers: int | None = 1,
) -> ReplicationSummary:
    """Run ``replications`` independent simulations and aggregate them.

    Convenience wrapper over :class:`ReplicationRunner`;
    ``build(replication_index, seed_sequence)`` must construct, run and
    return one :class:`SimulationResult`.  Seeds are spawned from
    ``base_seed`` so each replication gets an independent stream; the
    aggregate is identical for every ``workers`` value.
    """
    return ReplicationRunner(
        replications=replications, base_seed=base_seed, workers=workers
    ).run(build)


def summarise_replications(results: Sequence[SimulationResult]) -> ReplicationSummary:
    """Aggregate already-computed simulation results."""
    if not results:
        raise SimulationError("results must be non-empty")
    num_classes = len(results[0].classes)
    for r in results:
        if len(r.classes) != num_classes:
            raise SimulationError("all replications must have the same number of classes")

    slowdown_samples: list[list[float]] = [[] for _ in range(num_classes)]
    ratio_samples: list[list[float]] = [[] for _ in range(num_classes)]
    system_samples: list[float] = []
    for r in results:
        means = r.per_class_mean_slowdowns()
        system_samples.append(r.system_mean_slowdown())
        for c, value in enumerate(means):
            slowdown_samples[c].append(value)
        first = means[0]
        for c, value in enumerate(means):
            ratio_samples[c].append(value / first if first and not math.isnan(first) else float("nan"))

    return ReplicationSummary(
        per_class_slowdowns=tuple(
            ReplicatedStatistic.from_samples(s) for s in slowdown_samples
        ),
        system_slowdown=ReplicatedStatistic.from_samples(system_samples),
        ratios_to_first=tuple(ReplicatedStatistic.from_samples(s) for s in ratio_samples),
        results=tuple(results),
    )
