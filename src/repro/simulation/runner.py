"""Multi-replication orchestration.

Every data point in the paper is an average over 100 independent runs.  The
runner spawns one child seed per replication (so replications are independent
and reproducible), executes a caller-supplied simulation factory for each,
and aggregates per-class slowdowns and slowdown ratios with standard errors
and normal-approximation confidence intervals.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..distributions.rng import spawn_seed_sequences
from ..errors import SimulationError
from .psd_server import SimulationResult

__all__ = ["ReplicationSummary", "ReplicatedStatistic", "run_replications", "summarise_replications"]


@dataclass(frozen=True)
class ReplicatedStatistic:
    """Mean, standard deviation and a 95% confidence half-width across replications."""

    mean: float
    std: float
    half_width_95: float
    n: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "ReplicatedStatistic":
        arr = np.asarray([s for s in samples if not math.isnan(s)], dtype=float)
        if arr.size == 0:
            return cls(float("nan"), float("nan"), float("nan"), 0)
        mean = float(np.mean(arr))
        std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
        half = 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0
        return cls(mean, std, half, int(arr.size))


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregated output of a batch of replications."""

    per_class_slowdowns: tuple[ReplicatedStatistic, ...]
    system_slowdown: ReplicatedStatistic
    ratios_to_first: tuple[ReplicatedStatistic, ...]
    results: tuple[SimulationResult, ...]

    @property
    def mean_slowdowns(self) -> tuple[float, ...]:
        return tuple(s.mean for s in self.per_class_slowdowns)

    @property
    def mean_ratios_to_first(self) -> tuple[float, ...]:
        """Mean over replications of each replication's own slowdown ratios.

        Heavy-tailed workloads make this estimator noisy (a replication with
        an unusually small class-1 slowdown dominates); prefer
        :attr:`ratio_of_mean_slowdowns` when a single robust ratio is needed.
        """
        return tuple(s.mean for s in self.ratios_to_first)

    @property
    def ratio_of_mean_slowdowns(self) -> tuple[float, ...]:
        """Ratios of the replication-averaged slowdowns to class 1's."""
        means = self.mean_slowdowns
        return tuple(m / means[0] for m in means)


def run_replications(
    build: Callable[[int, np.random.SeedSequence], SimulationResult],
    *,
    replications: int,
    base_seed: int | np.random.SeedSequence | None = 0,
) -> ReplicationSummary:
    """Run ``replications`` independent simulations and aggregate them.

    ``build(replication_index, seed_sequence)`` must construct, run and
    return one :class:`SimulationResult`.  Seeds are spawned from
    ``base_seed`` so each replication gets an independent stream.
    """
    if replications <= 0:
        raise SimulationError("replications must be > 0")
    seeds = spawn_seed_sequences(base_seed, replications)
    results = [build(i, seed) for i, seed in enumerate(seeds)]
    return summarise_replications(results)


def summarise_replications(results: Sequence[SimulationResult]) -> ReplicationSummary:
    """Aggregate already-computed simulation results."""
    if not results:
        raise SimulationError("results must be non-empty")
    num_classes = len(results[0].classes)
    for r in results:
        if len(r.classes) != num_classes:
            raise SimulationError("all replications must have the same number of classes")

    slowdown_samples: list[list[float]] = [[] for _ in range(num_classes)]
    ratio_samples: list[list[float]] = [[] for _ in range(num_classes)]
    system_samples: list[float] = []
    for r in results:
        means = r.per_class_mean_slowdowns()
        system_samples.append(r.system_mean_slowdown())
        for c, value in enumerate(means):
            slowdown_samples[c].append(value)
        first = means[0]
        for c, value in enumerate(means):
            ratio_samples[c].append(value / first if first and not math.isnan(first) else float("nan"))

    return ReplicationSummary(
        per_class_slowdowns=tuple(
            ReplicatedStatistic.from_samples(s) for s in slowdown_samples
        ),
        system_slowdown=ReplicatedStatistic.from_samples(system_samples),
        ratios_to_first=tuple(ReplicatedStatistic.from_samples(s) for s in ratio_samples),
        results=tuple(results),
    )
