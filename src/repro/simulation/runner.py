"""Multi-replication orchestration, serial or parallel.

Every data point in the paper is an average over 100 independent runs.
:class:`ReplicationRunner` spawns one child seed per replication (so
replications are independent and reproducible), executes a caller-supplied
simulation factory for each — serially or across ``workers`` forked
processes — and aggregates per-class slowdowns and slowdown ratios with
standard errors and normal-approximation confidence intervals.

Determinism contract: the child seeds are spawned once, in replication
order, from ``base_seed`` (``spawn_seed_sequences(base_seed, replications)``)
and the per-replication results are re-assembled in replication order before
aggregation.  A run with ``workers=N`` therefore produces *bit-for-bit* the
same :class:`ReplicationSummary` statistics as ``workers=1`` for the same
``base_seed``, regardless of worker count or completion order.

Parallel execution uses ``fork``-start multiprocessing so that arbitrary
build closures (the common idiom throughout the experiments) need not be
picklable; on platforms without ``fork`` the runner silently degrades to
serial execution, preserving results exactly.  Note that in parallel mode
any mutation the build callable performs on enclosing state happens in the
child process and is *not* visible to the parent — return everything you
need through the :class:`SimulationResult`.

Result transport: since the ledger refactor a worker's
:class:`SimulationResult` is dominated by a handful of NumPy columns (the
run's :class:`~repro.simulation.ledger.RequestLedger`) instead of lists of
per-request objects.  Results are pickled with protocol 5 so those columns
are extracted as out-of-band buffers; when the buffers of one result exceed
:data:`SHM_MIN_BYTES` they are shipped through one
``multiprocessing.shared_memory`` segment instead of the result queue's
pipe, which large trace-replay runs cross far faster.  Either route (and
any fallback when shared memory is unavailable) reassembles byte-identical
arrays, so aggregates never depend on the transport.

When the build callable *is* picklable (a module-level function or callable
dataclass — the experiment drivers' builds are), parallel batches are routed
through a persistent :class:`WorkerPool` of forked workers that is reused
across batches, amortising the fork + import cost that dominates small
(``quick``-preset) replication batches.  The pool changes nothing about the
results: the same child seeds are spawned in the same order and the results
are re-assembled by replication index, so the aggregates stay bit-for-bit
identical to serial execution.  Unpicklable builds transparently fall back
to the per-batch fork path.
"""

from __future__ import annotations

import atexit
import logging
import math
import multiprocessing
import os
import pickle
import queue as queue_module
import time
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..distributions.rng import spawn_seed_sequences
from ..errors import SimulationError
from ..telemetry.log import get_logger, log_event
from .scenario import SimulationResult

__all__ = [
    "ReplicationRunner",
    "ReplicationSummary",
    "ReplicatedStatistic",
    "WorkerPool",
    "shared_pool",
    "run_replications",
    "summarise_replications",
]

#: A build callable: ``build(replication_index, seed_sequence)`` constructs,
#: runs and returns one :class:`SimulationResult`.
BuildFn = Callable[[int, np.random.SeedSequence], SimulationResult]

_log = get_logger("runner")

try:  # pragma: no cover - import guard exercised via the fallback test
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None

#: A worker result whose out-of-band buffers total at least this many bytes
#: is routed through one ``multiprocessing.shared_memory`` segment instead
#: of the result queue's pipe.  Below it (the common case for the paper's
#: protocol) the pipe wins: a segment costs a file create/map/unlink.
SHM_MIN_BYTES = 1 << 20


class _SegmentOwner:
    """Keeps a decoded result's shared-memory mapping alive (zero-copy).

    The decoder maps a worker's column buffers straight out of the shared
    segment and unlinks the file immediately — POSIX keeps the mapping valid
    until the last close — so this object's only job is to delay that close
    until the result (which parks the owner on itself and its ledger) is
    garbage collected.
    """

    __slots__ = ("_segment",)

    def __init__(self, segment) -> None:
        self._segment = segment

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self._segment.close()
        except BufferError:
            # Some column view still references the mapping (the caller kept
            # a raw array past the result).  Detach our handles instead of
            # closing: the mmap is freed when the last view goes, and the
            # segment's own finaliser now has nothing left to close.
            self._segment._buf = None
            self._segment._mmap = None
        except Exception:
            pass


def _encode_result(result: SimulationResult, build_seconds: float | None = None) -> tuple:
    """Serialise one worker result for the trip back to the parent.

    Protocol-5 pickling splits the result into a small object-graph body and
    the raw NumPy column buffers.  Large buffer sets go to a shared-memory
    segment, each span aligned to 64 bytes so the parent can map the columns
    in place; everything else is shipped inline.  Both forms reassemble
    byte-identical arrays.

    The payload's *last* element is a profiling meta dict (transport route,
    payload bytes, encode/build wall-clock) that :func:`_decode_result`
    turns into the result's ``worker_profile``; it rides at the end so the
    positional accesses in :func:`_release_payload` (kind at 0, segment name
    at 2) stay valid.
    """
    encode_start = time.perf_counter()
    buffers: list[pickle.PickleBuffer] = []
    body = pickle.dumps(result, protocol=5, buffer_callback=buffers.append)
    views = [memoryview(b.raw()).cast("B") for b in buffers]
    total = sum(view.nbytes for view in views)
    meta = {
        "payload_bytes": len(body) + total,
        "build_seconds": build_seconds,
        "worker_pid": os.getpid(),
    }
    if _shared_memory is not None and total >= SHM_MIN_BYTES:
        spans = []
        position = 0
        for view in views:
            position = (position + 63) & ~63
            spans.append((position, view.nbytes))
            position += view.nbytes
        try:
            segment = _shared_memory.SharedMemory(create=True, size=max(position, 1))
        except OSError:
            segment = None  # e.g. /dev/shm missing or full: ship inline
        if segment is not None:
            for view, (start, nbytes) in zip(views, spans):
                segment.buf[start : start + nbytes] = view
            segment.close()
            meta["transport"] = "shm"
            meta["encode_seconds"] = time.perf_counter() - encode_start
            return "shm", body, segment.name, spans, meta
    inline = [bytes(view) for view in views]
    meta["transport"] = "inline"
    meta["encode_seconds"] = time.perf_counter() - encode_start
    return "inline", body, inline, meta


def _decode_result(payload: tuple) -> SimulationResult:
    """Reassemble a worker result encoded by :func:`_encode_result`.

    Shared-memory results are decoded zero-copy: the pickle buffers are
    memoryview slices of the mapped segment, so the parent's ledger columns
    *are* the worker's bytes — no copy, no allocation.  The parent takes
    ownership of the segment (unlinked immediately, mapping kept alive by a
    :class:`_SegmentOwner` parked on the result and its ledger) and the old
    copy-out path remains as the fallback if in-place reassembly fails.
    """
    decode_start = time.perf_counter()
    kind = payload[0]
    if kind == "shm":
        _, body, name, spans, meta = payload
        segment = _shared_memory.SharedMemory(name=name)
        try:
            result = pickle.loads(
                body, buffers=[segment.buf[pos : pos + size] for pos, size in spans]
            )
        except Exception:
            # Fall back to independent copies; then drop the mapping (any
            # half-built views die with the exception's object graph).
            buffers = [bytearray(segment.buf[pos : pos + size]) for pos, size in spans]
            _close_segment(segment, unlink=True)
            result = pickle.loads(body, buffers=buffers)
            return _stamp_profile(result, meta, decode_start)
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass
        owner = _SegmentOwner(segment)
        ledger = getattr(result, "ledger", None)
        if ledger is not None:
            ledger._buffer_owner = owner
        result._buffer_owner = owner
        return _stamp_profile(result, meta, decode_start)
    _, body, buffers, meta = payload
    result = pickle.loads(body, buffers=[bytearray(b) for b in buffers])
    return _stamp_profile(result, meta, decode_start)


def _stamp_profile(result, meta: dict, decode_start: float):
    """Attach transport + timing meta as the result's ``worker_profile``."""
    if hasattr(result, "worker_profile"):
        result.worker_profile = {**meta, "decode_seconds": time.perf_counter() - decode_start}
    return result


def _close_segment(segment, *, unlink: bool) -> None:
    """Close (and optionally unlink) a segment, tolerating exported views."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - exported views still alive
        segment._buf = None
        segment._mmap = None
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass


def _ensure_resource_tracker() -> None:
    """Start the multiprocessing resource tracker before forking workers.

    Shared-memory segments are created in forked children and unlinked in
    the parent.  If the tracker is first spawned lazily *inside* a child,
    each child gets a private tracker that never sees the parent's unlink
    and warns about "leaked" (actually long-gone) segments at shutdown;
    spawning it up front gives every fork the same tracker, so register
    (child) and unregister (parent) balance — and crash cleanup still works.
    """
    if _shared_memory is None:
        return
    try:  # pragma: no branch
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker is an optimisation only
        pass


def _release_payload(payload: tuple) -> None:
    """Free transport resources of a result that will never be decoded."""
    if payload and payload[0] == "shm":
        try:
            segment = _shared_memory.SharedMemory(name=payload[2])
        except FileNotFoundError:  # pragma: no cover - already reaped
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent reap
            pass


def _drain_undecoded(out: "multiprocessing.Queue") -> None:
    """Best-effort: release transport resources of results still queued.

    Called on teardown paths (worker failure, pool close) after the workers
    were stopped — possibly terminated mid-``put`` — so *any* error reading
    the queue (empty, torn pipe, truncated pickle) just ends the drain; it
    must never mask the failure that brought us here.
    """
    while True:
        try:
            _, undelivered, _ = out.get_nowait()
        except Exception:
            return
        if undelivered is not None:
            _release_payload(undelivered)


@dataclass(frozen=True)
class ReplicatedStatistic:
    """Mean, standard deviation and a 95% confidence half-width across replications."""

    mean: float
    std: float
    half_width_95: float
    n: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "ReplicatedStatistic":
        arr = np.asarray([s for s in samples if not math.isnan(s)], dtype=float)
        if arr.size == 0:
            return cls(float("nan"), float("nan"), float("nan"), 0)
        mean = float(np.mean(arr))
        std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
        half = 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0
        return cls(mean, std, half, int(arr.size))


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregated output of a batch of replications."""

    per_class_slowdowns: tuple[ReplicatedStatistic, ...]
    system_slowdown: ReplicatedStatistic
    ratios_to_first: tuple[ReplicatedStatistic, ...]
    results: tuple[SimulationResult, ...]

    @property
    def mean_slowdowns(self) -> tuple[float, ...]:
        return tuple(s.mean for s in self.per_class_slowdowns)

    @property
    def mean_ratios_to_first(self) -> tuple[float, ...]:
        """Mean over replications of each replication's own slowdown ratios.

        Heavy-tailed workloads make this estimator noisy (a replication with
        an unusually small class-1 slowdown dominates); prefer
        :attr:`ratio_of_mean_slowdowns` when a single robust ratio is needed.
        """
        return tuple(s.mean for s in self.ratios_to_first)

    @property
    def ratio_of_mean_slowdowns(self) -> tuple[float, ...]:
        """Ratios of the replication-averaged slowdowns to class 1's."""
        means = self.mean_slowdowns
        return tuple(m / means[0] for m in means)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _worker(
    build: BuildFn,
    seeds: Sequence[np.random.SeedSequence],
    indices: Sequence[int],
    out: "multiprocessing.Queue",
) -> None:
    """Run a contiguous-by-stride slice of replications in a forked child.

    Results are pre-pickled inside the try block: the queue's feeder thread
    serialises asynchronously, so an unpicklable result would otherwise be
    dropped silently and surface as an uninformative dead-worker error.
    KeyboardInterrupt/SystemExit are deliberately not caught — they kill the
    child, which the parent's dead-worker check reports.
    """
    for index in indices:
        try:
            start = time.perf_counter()
            result = build(index, seeds[index])
            payload = _encode_result(result, build_seconds=time.perf_counter() - start)
        except Exception:
            out.put((index, None, traceback.format_exc()))
            return
        out.put((index, payload, None))


class _PoolFallback(Exception):
    """Internal: a pool batch could not run; retry on the per-batch fork path.

    Raised for conditions that do not indicate a build failure — the build
    could not be deserialised in a worker (e.g. its module was imported
    after the pool forked) or a worker process died.  Retrying via the
    per-batch fork path yields identical results, so callers recover
    silently.
    """


def _pool_worker(tasks: "multiprocessing.Queue", out: "multiprocessing.Queue") -> None:
    """Long-lived worker loop: execute batches of replications until told to stop.

    Each task is ``(build_bytes, [(index, seed), ...])`` — only the worker's
    own slice of the seed tree crosses the queue.  The worker reports exactly
    one ``(index, payload, error)`` message per assigned index, where
    ``error`` is ``None`` or ``(kind, traceback_text)`` with kind
    ``"deserialize"`` (build could not be unpickled here — the parent falls
    back to per-batch forking) or ``"build"`` (the build itself raised).
    Unlike the one-shot :func:`_worker`, errors do not kill the worker: the
    pool outlives failed batches.
    """
    while True:
        task = tasks.get()
        if task is None:
            return
        build_bytes, assignments = task
        try:
            build = pickle.loads(build_bytes)
        except Exception:
            error = ("deserialize", traceback.format_exc())
            for index, _ in assignments:
                out.put((index, None, error))
            continue
        for index, seed in assignments:
            try:
                start = time.perf_counter()
                result = build(index, seed)
                payload = _encode_result(result, build_seconds=time.perf_counter() - start)
            except Exception:
                out.put((index, None, ("build", traceback.format_exc())))
                continue
            out.put((index, payload, None))


class WorkerPool:
    """A persistent pool of forked replication workers, reusable across batches.

    The workers are forked lazily at the first :meth:`run_batch` (so they
    inherit every module imported up to that point) and then stay alive,
    amortising the fork cost over all subsequent batches.  Builds must be
    picklable to cross the task queue; :class:`ReplicationRunner` checks
    that and falls back to per-batch forking otherwise, so the pool never
    changes results — only wall-time.

    Two consequences of the one-time fork to be aware of:

    * workers carry the parent's state *as of the first batch* — a build
      must be a pure function of ``(index, seed)`` and its own pickled
      fields (already required by the determinism contract); one that reads
      module-level globals mutated between batches would see stale values;
    * the daemon workers (and their copy-on-write memory snapshot) stay
      alive until :meth:`close` or interpreter exit — long-lived host
      processes that are done replicating should close their pools (the
      process-wide :func:`shared_pool` is closed automatically at exit).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise SimulationError(f"a worker pool needs >= 1 workers, got {workers}")
        if not _fork_available():
            raise SimulationError("WorkerPool requires fork-start multiprocessing")
        self.workers = int(workers)
        self._processes: list = []
        self._task_queues: list = []
        self._out = None
        self.broken = False
        self.closed = False

    @property
    def started(self) -> bool:
        return bool(self._processes)

    def _ensure_started(self) -> None:
        if self.closed or self.broken:
            raise SimulationError("worker pool is closed")
        if self._processes:
            return
        _ensure_resource_tracker()
        ctx = multiprocessing.get_context("fork")
        self._out = ctx.Queue()
        self._task_queues = [ctx.Queue() for _ in range(self.workers)]
        self._processes = [
            ctx.Process(target=_pool_worker, args=(tasks, self._out), daemon=True)
            for tasks in self._task_queues
        ]
        for process in self._processes:
            process.start()

    def run_batch(
        self, build_payload: bytes, seeds: Sequence[np.random.SeedSequence]
    ) -> list[SimulationResult]:
        """Run one batch of replications (one pickled build, one seed per index).

        Unlike the per-batch fork path, a failing build does not abort the
        rest of the batch: the pool must drain every in-flight message to
        stay reusable, so the error is raised only after the batch
        completes (with the lowest failing index, deterministically).
        """
        self._ensure_started()
        # Strided slices, a pure function of (len(seeds), workers) — the
        # same deterministic split the per-batch fork path uses.
        for start, tasks in enumerate(self._task_queues):
            assignments = [
                (index, seeds[index]) for index in range(start, len(seeds), self.workers)
            ]
            if assignments:
                tasks.put((build_payload, assignments))
        results: list[SimulationResult | None] = [None] * len(seeds)
        failures: list[tuple[int, str]] = []
        fallback = False
        remaining = len(seeds)
        while remaining:
            try:
                index, payload, error = self._out.get(timeout=1.0)
            except queue_module.Empty:
                if not all(p.is_alive() for p in self._processes):
                    # A dead worker cannot report its slice; the batch is
                    # unrecoverable here but deterministic to re-run.
                    self.broken = True
                    self.close()
                    raise _PoolFallback("a pool worker died mid-batch") from None
                continue
            remaining -= 1
            if error is not None:
                kind, text = error
                if kind == "deserialize":
                    fallback = True
                else:
                    failures.append((index, text))
            else:
                results[index] = _decode_result(payload)
        if fallback:
            raise _PoolFallback("build could not be deserialised in pool workers")
        if failures:
            index, text = min(failures)
            raise SimulationError(f"replication {index} failed in a worker process:\n{text}")
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Stop the workers and release the queues; the pool is single-use."""
        if self.closed:
            return
        self.closed = True
        for tasks in self._task_queues:
            try:
                tasks.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join()
        # Results still queued when the pool goes down (dead-worker batches,
        # host processes closing early) are never decoded; release the
        # shared-memory segments they may hold.
        if self._out is not None:
            _drain_undecoded(self._out)


_shared_pool: WorkerPool | None = None


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide worker pool, (re)sized to at least ``workers``.

    Reused by every :class:`ReplicationRunner` whose build is picklable; a
    request for more workers than the current pool has replaces it (an
    over-sized pool serves smaller batches by leaving workers idle, so
    shrinking is never necessary).
    """
    global _shared_pool
    pool = _shared_pool
    if pool is None or pool.closed or pool.broken or pool.workers < workers:
        if pool is not None:
            pool.close()
        pool = WorkerPool(workers)
        _shared_pool = pool
    return pool


@atexit.register
def _close_shared_pool() -> None:  # pragma: no cover - interpreter shutdown
    if _shared_pool is not None:
        _shared_pool.close()


@dataclass(frozen=True)
class ReplicationRunner:
    """Runs N independent replications and aggregates their statistics.

    Parameters
    ----------
    replications:
        Number of independent simulation runs.
    base_seed:
        Root of the seed tree; one child ``SeedSequence`` is spawned per
        replication, in replication order.
    workers:
        ``1`` (default) runs serially in-process.  ``N > 1`` forks ``N``
        worker processes, each executing a deterministic slice of the
        replication indices.  ``0`` or ``None`` auto-sizes to the CPU count;
        negative values are rejected.  The aggregated summary is bit-for-bit
        identical for every value.
    pool:
        Optional persistent :class:`WorkerPool` to execute parallel batches
        on.  ``None`` (default) uses the process-wide :func:`shared_pool`
        when the build is picklable, otherwise forks per batch; either way
        the results are identical.

    Error contract: an exception raised by ``build`` propagates unchanged in
    serial mode; in parallel mode it surfaces as a :class:`SimulationError`
    carrying the failing replication index and the child's traceback (the
    original exception object cannot cross the process boundary reliably).
    """

    replications: int
    base_seed: int | np.random.SeedSequence | None = 0
    workers: int | None = 1
    pool: WorkerPool | None = None

    def resolved_workers(self) -> int:
        """The number of worker processes a :meth:`run` call will use."""
        if self.workers is not None and self.workers < 0:
            raise SimulationError(f"workers must be >= 0, got {self.workers}")
        if self.workers is None or self.workers == 0:
            if hasattr(os, "sched_getaffinity"):
                limit = len(os.sched_getaffinity(0)) or 1
            else:  # pragma: no cover - non-Linux
                limit = os.cpu_count() or 1
        else:
            limit = self.workers
        return max(1, min(limit, self.replications))

    def run(self, build: BuildFn) -> ReplicationSummary:
        """Execute ``build`` for every replication and aggregate the results."""
        return summarise_replications(self.run_raw(build))

    def run_raw(self, build: BuildFn) -> list[SimulationResult]:
        """Execute every replication and return the results in index order."""
        if self.replications <= 0:
            raise SimulationError("replications must be > 0")
        seeds = spawn_seed_sequences(self.base_seed, self.replications)
        workers = self.resolved_workers()
        if workers <= 1 or not _fork_available():
            if workers > 1:
                log_event(
                    _log,
                    logging.WARNING,
                    "runner.serial_fallback",
                    reason="fork-start multiprocessing unavailable",
                    workers=workers,
                )
            return self._run_serial(build, seeds)
        try:
            payload = pickle.dumps(build)
        except Exception:
            # Closures et al.: the per-batch fork path handles them.
            log_event(
                _log,
                logging.DEBUG,
                "runner.unpicklable_build",
                build=type(build).__name__,
            )
            payload = None
        if payload is not None:
            pool = self.pool if self.pool is not None else shared_pool(workers)
            # An explicit pool that was closed (or broke in an earlier
            # batch) degrades to per-batch forking instead of erroring —
            # the pool only ever changes wall-time, never availability.
            if not (pool.closed or pool.broken):
                try:
                    return pool.run_batch(payload, seeds)
                except _PoolFallback as fallback:
                    # A deserialize fallback means the workers pre-date the
                    # build's module; retiring the *shared* pool lets the
                    # next batch re-fork with the module imported and regain
                    # pooling (an explicit pool is the caller's to manage).
                    log_event(
                        _log,
                        logging.INFO,
                        "runner.pool_fallback",
                        reason=str(fallback),
                        workers=workers,
                    )
                    if self.pool is None and not pool.closed:
                        pool.close()
        return self._run_parallel(build, seeds, workers)

    @staticmethod
    def _run_serial(
        build: BuildFn, seeds: Sequence[np.random.SeedSequence]
    ) -> list[SimulationResult]:
        """In-process execution, stamping each result's ``worker_profile``."""
        results = []
        for index, seed in enumerate(seeds):
            start = time.perf_counter()
            result = build(index, seed)
            if hasattr(result, "worker_profile") and result.worker_profile is None:
                result.worker_profile = {
                    "transport": "serial",
                    "build_seconds": time.perf_counter() - start,
                    "worker_pid": os.getpid(),
                }
            results.append(result)
        return results

    # ------------------------------------------------------------------ #
    # Parallel execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_parallel(
        build: BuildFn, seeds: list[np.random.SeedSequence], workers: int
    ) -> list[SimulationResult]:
        _ensure_resource_tracker()
        ctx = multiprocessing.get_context("fork")
        out: multiprocessing.Queue = ctx.Queue()
        # Strided slices balance heterogeneous replication costs and are a
        # pure function of (replications, workers) — never of timing.
        slices = [list(range(start, len(seeds), workers)) for start in range(workers)]
        processes = [
            ctx.Process(target=_worker, args=(build, seeds, indices, out), daemon=True)
            for indices in slices
            if indices
        ]
        for process in processes:
            process.start()
        results: list[SimulationResult | None] = [None] * len(seeds)
        failure: tuple[int, str] | None = None
        remaining = len(seeds)
        try:
            while remaining and failure is None:
                try:
                    index, result, error = out.get(timeout=1.0)
                except queue_module.Empty:
                    if not any(p.is_alive() for p in processes) and out.empty():
                        raise SimulationError(
                            "a replication worker died without reporting a result"
                        ) from None
                    continue
                remaining -= 1
                if error is not None:
                    failure = (index, error)
                else:
                    results[index] = _decode_result(result)
        finally:
            if failure is not None or remaining:
                for process in processes:
                    process.terminate()
            for process in processes:
                process.join()
            # Results still queued after a failure are never decoded; free
            # any shared-memory segments they carry.
            _drain_undecoded(out)
        if failure is not None:
            index, error = failure
            raise SimulationError(f"replication {index} failed in a worker process:\n{error}")
        return results  # type: ignore[return-value]


def run_replications(
    build: BuildFn,
    *,
    replications: int,
    base_seed: int | np.random.SeedSequence | None = 0,
    workers: int | None = 1,
    pool: WorkerPool | None = None,
) -> ReplicationSummary:
    """Run ``replications`` independent simulations and aggregate them.

    Convenience wrapper over :class:`ReplicationRunner`;
    ``build(replication_index, seed_sequence)`` must construct, run and
    return one :class:`SimulationResult`.  Seeds are spawned from
    ``base_seed`` so each replication gets an independent stream; the
    aggregate is identical for every ``workers`` value.
    """
    return ReplicationRunner(
        replications=replications, base_seed=base_seed, workers=workers, pool=pool
    ).run(build)


def summarise_replications(results: Sequence[SimulationResult]) -> ReplicationSummary:
    """Aggregate already-computed simulation results."""
    if not results:
        raise SimulationError("results must be non-empty")
    num_classes = len(results[0].classes)
    for r in results:
        if len(r.classes) != num_classes:
            raise SimulationError("all replications must have the same number of classes")

    slowdown_samples: list[list[float]] = [[] for _ in range(num_classes)]
    ratio_samples: list[list[float]] = [[] for _ in range(num_classes)]
    system_samples: list[float] = []
    for r in results:
        means = r.per_class_mean_slowdowns()
        system_samples.append(r.system_mean_slowdown())
        for c, value in enumerate(means):
            slowdown_samples[c].append(value)
        first = means[0]
        for c, value in enumerate(means):
            ratio_samples[c].append(
                value / first if first and not math.isnan(first) else float("nan")
            )

    return ReplicationSummary(
        per_class_slowdowns=tuple(
            ReplicatedStatistic.from_samples(s) for s in slowdown_samples
        ),
        system_slowdown=ReplicatedStatistic.from_samples(system_samples),
        ratios_to_first=tuple(ReplicatedStatistic.from_samples(s) for s in ratio_samples),
        results=tuple(results),
    )
