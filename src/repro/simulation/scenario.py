"""The composable simulation scenario: common assembly for every server model.

Every PSD simulation — the paper's idealised Fig. 1 model, the realistic
shared-processor variant, or any future server model — shares the same
skeleton: per-class request sources feed requests through an (optional)
admission policy into the serving substrate; a windowed monitor and a trace
record completions; at every estimation-window boundary the controller
observes the window's arrivals/work (and, for feedback controllers, the
measured slowdowns) and re-allocates the per-class processing rates, which
are pushed back into the server model.

:class:`Scenario` owns that skeleton once.  The serving substrate is a
pluggable :class:`~repro.simulation.server_models.ServerModel`; the
controller is any :class:`RateController` (the adaptive
:class:`repro.core.PsdController` by default).  The legacy entry points
``PsdServerSimulation`` and ``SharedProcessorSimulation`` are thin wrappers
that pre-select the server model.

Columnar lifecycle
------------------
The scenario owns the run's :class:`~repro.simulation.ledger.RequestLedger`.
Every arrival appends one row; admitted (and degraded) rows are submitted to
the server model, shed rows keep their origin class with
``DISPOSITION_SHED`` and never enter service.  Completions write timestamps
straight into the ledger's columns.  No per-request Python object or
callback bookkeeping exists on the hot path: the estimation-window
statistics (arrival counts, offered work, measured slowdowns) are computed
at each window boundary by slicing the columns past a cursor — shed rows
filtered out, so the controller allocates for admitted traffic only — and
reducing with ``np.bincount``, which accumulates in input order, so the sums
are bit-identical to the old per-completion ``+=`` loop; the monitor/trace
expose the same ledger without copying.

Admission on the batched hot path
---------------------------------
``window_scoped`` admission policies (see :mod:`repro.core.admission`) run
batched: each pre-drawn arrival block gets one
:meth:`~repro.core.AdmissionPolicy.decide_block` call at the window
boundary — before the block is cut at fleet-event instants — and the
policy's :meth:`~repro.core.AdmissionPolicy.observe_window` hook fires at
run start and every boundary, after the controller's new rates are applied.
Policies reading live per-arrival state (``window_scoped = False``) fall
back to the per-event path automatically.

All durations (warm-up, horizon, window) are interpreted in the same units
as the service-time distributions — use
:meth:`repro.simulation.MeasurementConfig.scaled_to_time_units` to convert a
protocol expressed in the paper's abstract "time units" (multiples of the
mean service time).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..core.admission import AdmissionDecision, SystemSnapshot
from ..core.controller import PsdController
from ..core.psd import PsdSpec
from ..distributions.rng import spawn_generators
from ..errors import SimulationError
from ..types import TrafficClass
from .engine import SimulationEngine
from .generator import RequestSource, sources_from_classes
from .ledger import DISPOSITION_DEGRADED, DISPOSITION_SHED, RequestLedger
from .monitor import MeasurementConfig, WindowedMonitor
from .server_models import RateScalableServers, ServerModel
from .trace import SimulationTrace

__all__ = [
    "RateController",
    "StaticRateController",
    "SimulationResult",
    "Scenario",
]


class RateController:
    """Protocol-style base for rate controllers driven by the simulation.

    A controller exposes the rate vector currently in force and accepts one
    observation per estimation window.  :class:`repro.core.PsdController`
    implements this interface; :class:`StaticRateController` provides a
    non-adaptive alternative used by the baseline and ablation benches.
    """

    @property
    def current_rates(self) -> tuple[float, ...]:  # pragma: no cover - interface
        raise NotImplementedError

    def observe_window(
        self, time: float, window_length: float, arrivals: Sequence[int], work: Sequence[float]
    ):  # pragma: no cover - interface
        raise NotImplementedError


class StaticRateController(RateController):
    """A controller that never changes its rate vector."""

    def __init__(self, rates: Sequence[float]) -> None:
        rates = tuple(float(r) for r in rates)
        if not rates or any(r < 0.0 for r in rates):
            raise SimulationError("rates must be a non-empty vector of non-negative values")
        self._rates = rates
        self.observations = 0

    @property
    def current_rates(self) -> tuple[float, ...]:
        return self._rates

    def observe_window(self, time, window_length, arrivals, work):
        self.observations += 1
        return None


@dataclass
class SimulationResult:
    """Everything a single simulation run produced.

    ``ledger`` is the run's columnar request store; when present, the
    post-warm-up summaries below are computed with vectorised NumPy over its
    columns (bit-identical to the per-record loops they replaced, which are
    kept as the fallback for hand-assembled results without a ledger).
    """

    classes: tuple[TrafficClass, ...]
    config: MeasurementConfig
    trace: SimulationTrace
    monitor: WindowedMonitor
    controller: RateController
    rate_history: list[tuple[float, tuple[float, ...]]] = field(default_factory=list)
    generated_counts: tuple[int, ...] = ()
    completed_counts: tuple[int, ...] = ()
    #: Shed requests per *origin* class (the admission ladder's SHED leg).
    rejected_counts: tuple[int, ...] = ()
    #: Degraded requests per *origin* class; the rows live in the ledger
    #: under their downgraded class (see ``degraded_into_counts``).
    degraded_counts: tuple[int, ...] = ()
    #: Degraded requests per *target* class.
    degraded_into_counts: tuple[int, ...] = ()
    ledger: RequestLedger | None = None
    #: Fleet history of a clustered run — ``(time, node_states, capacities)``
    #: entries copied from :attr:`repro.cluster.ClusterServerModel.
    #: fleet_timeline`; ``None`` for non-cluster servers.
    fleet_timeline: list[tuple[float, tuple[str, ...], tuple[float | None, ...]]] | None = None
    #: Per-request node choices of a clustered run built with
    #: ``record_dispatch=True`` (``None`` otherwise); rides replication
    #: results so determinism tests can diff dispatch across worker counts.
    dispatch_log: list[int] | None = None
    #: Per-node rate-share history of a clustered run with telemetry
    #: attached — ``(time, ((node0 per-class shares), ...))`` per
    #: ``apply_rates`` call; ``None`` otherwise.  Health snapshots derive
    #: per-node assigned rates and utilisation from it.
    node_share_history: list[tuple[float, tuple[tuple[float, ...], ...]]] | None = None
    #: Wall-clock transport/build profile stamped by the replication runner
    #: (``None`` for results built outside it): transport route, payload
    #: bytes, encode/decode/build seconds, worker pid.
    worker_profile: dict | None = None
    #: Fleet events an autoscaler emitted during the run, in application
    #: order (``None`` when the scenario ran without one).  The same events
    #: also appear in ``fleet_timeline`` as state transitions; this list
    #: keeps the decision sequence itself diffable across worker counts.
    autoscale_events: list | None = None

    def __getstate__(self):
        # A zero-copy-decoded result carries a shared-memory keeper in
        # ``_buffer_owner`` (see ``runner._decode_result``); it is
        # process-local and must not ride a re-pickle.
        state = self.__dict__.copy()
        state.pop("_buffer_owner", None)
        return state

    # ------------------------------------------------------------------ #
    # Post-warm-up summaries (the quantities the paper reports)
    # ------------------------------------------------------------------ #
    def measured_records(self):
        """Completed requests whose completion falls after the warm-up.

        Materialises one :class:`~repro.simulation.trace.RequestRecord` per
        request — use the vectorised summaries below when aggregates are all
        that is needed.
        """
        return self.trace.in_window(self.config.warmup, float("inf"), by="completion")

    def _measured_ids(self) -> np.ndarray:
        """Ledger row ids measured by the protocol, in completion order."""
        ids = self.ledger.completed_ids
        completion = self.ledger.completion_time[ids]
        return ids[completion >= self.config.warmup]

    def _per_class_means(self, metric: str) -> tuple[float, ...]:
        """Post-warm-up per-class means of ``metric`` (NaN for silent classes).

        Vectorised over the ledger columns when a ledger is present; the
        per-record fallback keeps hand-assembled results working.
        """
        if self.ledger is None:
            records = self.measured_records()
            out = []
            for c in range(len(self.classes)):
                vals = [getattr(r, metric) for r in records if r.class_index == c]
                out.append(float(np.mean(vals)) if vals else float("nan"))
            return tuple(out)
        ids = self._measured_ids()
        cls = self.ledger.class_index[ids]
        values = getattr(self.ledger, metric + "s")(ids)
        out = []
        for c in range(len(self.classes)):
            vals = values[cls == c]
            out.append(float(np.mean(vals)) if vals.size else float("nan"))
        return tuple(out)

    def per_class_mean_slowdowns(self) -> tuple[float, ...]:
        return self._per_class_means("slowdown")

    def per_class_mean_waiting_times(self) -> tuple[float, ...]:
        return self._per_class_means("waiting_time")

    def per_class_completed_work(self) -> tuple[float, ...]:
        """Total full-rate service demand completed per class after warm-up."""
        if self.ledger is None:
            records = self.measured_records()
            work = [0.0] * len(self.classes)
            for r in records:
                work[r.class_index] += r.size
            return tuple(work)
        ids = self._measured_ids()
        work = np.bincount(
            self.ledger.class_index[ids],
            weights=self.ledger.size[ids],
            minlength=len(self.classes),
        )
        return tuple(float(w) for w in work)

    def system_mean_slowdown(self) -> float:
        if self.ledger is None:
            vals = [r.slowdown for r in self.measured_records()]
            return float(np.mean(vals)) if vals else float("nan")
        vals = self.ledger.slowdowns(self._measured_ids())
        return float(np.mean(vals)) if vals.size else float("nan")

    def slowdown_ratios_to_first(self) -> tuple[float, ...]:
        means = self.per_class_mean_slowdowns()
        return tuple(m / means[0] for m in means)

    def shed_fraction(self) -> float:
        """Fraction of generated requests the admission policy shed."""
        total = sum(self.generated_counts)
        return sum(self.rejected_counts) / total if total else 0.0

    def degraded_fraction(self) -> float:
        """Fraction of generated requests admitted at a downgraded class."""
        total = sum(self.generated_counts)
        return sum(self.degraded_counts) / total if total else 0.0

    def per_node_availability(self, num_windows: int | None = None):
        """Per-window per-node live fractions, or ``None`` without fleet data.

        ``num_windows`` defaults to every full measurement window between
        warm-up and the horizon; the matrix is aligned with the monitor's
        window indexing (see :meth:`WindowedMonitor.availability_series`).
        """
        if self.fleet_timeline is None:
            return None
        if num_windows is None:
            # Floor with a jitter epsilon: scaled (horizon - warmup) / window
            # lands a hair below the exact count for many service-time means,
            # and a bare floor would silently drop the last full window.
            num_windows = int(
                (self.config.horizon - self.config.warmup) / self.config.window + 1e-9
            )
        return self.monitor.availability_series(self.fleet_timeline, num_windows)


class Scenario:
    """One simulation run: sources + admission + server model + controller.

    Parameters
    ----------
    classes:
        The traffic classes sharing the server.
    config:
        Measurement protocol (warm-up, horizon, estimation window).
    server:
        The serving substrate; defaults to the paper's idealised
        :class:`~repro.simulation.server_models.RateScalableServers`.  Server
        models hold per-run state, so pass a *fresh* instance per scenario.
    spec / controller:
        Either a :class:`~repro.core.PsdSpec` (an adaptive
        :class:`~repro.core.PsdController` is built from it) or an explicit
        :class:`RateController`.  With neither, the spec defaults to the
        classes' own deltas.
    seed / sources:
        Either a seed (one RNG stream is spawned per class and Poisson
        sources are built from the classes) or explicit request sources.
    admission:
        Optional :class:`repro.core.AdmissionPolicy`.  Every arrival gets a
        ledger row; the policy's decision picks its fate — ``ACCEPT`` rows
        are served as-is, ``DEGRADE`` rows are re-classed to the policy's
        :meth:`~repro.core.AdmissionPolicy.degrade_target` and served there,
        ``SHED`` rows are recorded (disposition column) but never submitted.
    autoscaler:
        Optional :class:`repro.cluster.AutoscalerPolicy` (duck-typed: any
        object with an ``observe_boundary`` hook).  At every estimation
        window boundary — after the controller's new rates are applied,
        before admission re-budgets — the policy observes the window and
        the emitted fleet events are applied to the server synchronously,
        so the fleet scales endogenously with identical timelines on both
        hot paths.  Requires a server exposing ``apply_fleet_event``
        (clusters); the events ride the result as ``autoscale_events``.
    batched:
        Selects the hot path.  ``True`` runs the batched pipeline (arrival
        blocks pre-drawn per estimation window, completions drained in bulk
        at window boundaries — bit-identical aggregates, one engine event
        per window instead of several per request); ``False`` forces the
        per-event path (the escape hatch differential tests diff against,
        and what per-event server models require).  The default ``None``
        picks batched automatically whenever the server model supports it
        and the admission policy (if any) is ``window_scoped``; policies
        reading live per-arrival state fall back to per-event.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` facade.  ``None`` (the
        default) is the no-op fast path: every instrumented site reduces to
        one ``is not None`` check and the run's aggregates are bit-identical
        to a scenario without the parameter.  With a facade the scenario
        installs its engine clock, registers the engine event listener (when
        enabled) and feeds the window/batch/drain/admission hooks.
    """

    def __init__(
        self,
        classes: Sequence[TrafficClass],
        config: MeasurementConfig,
        *,
        server: ServerModel | None = None,
        spec: PsdSpec | None = None,
        controller: RateController | None = None,
        seed: int | np.random.SeedSequence | None = 0,
        sources: Sequence[RequestSource] | None = None,
        admission: "AdmissionPolicy | None" = None,
        autoscaler: "AutoscalerPolicy | None" = None,
        batched: bool | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if not classes:
            raise SimulationError("classes must be non-empty")
        self.classes = tuple(classes)
        self.config = config
        self.admission = admission
        self.autoscaler = autoscaler
        self.autoscale_events: list = []
        self.engine = SimulationEngine()
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach_clock(lambda: self.engine.now)
            if telemetry.enabled:
                self.engine.set_listener(telemetry.on_event)
        if controller is None:
            if spec is None:
                spec = PsdSpec(tuple(cls.delta for cls in classes))
            controller = PsdController(self.classes, spec)
        self.controller = controller
        if sources is None:
            rngs = spawn_generators(seed, len(self.classes))
            sources = sources_from_classes(self.classes, rngs)
        if len(sources) != len(self.classes):
            raise SimulationError("one request source per class is required")
        self.sources = list(sources)

        self.ledger = RequestLedger(len(self.classes))
        self.trace = SimulationTrace(len(self.classes), ledger=self.ledger)
        self.monitor = WindowedMonitor(
            len(self.classes),
            warmup=config.warmup,
            window=config.window,
            ledger=self.ledger,
        )
        self.rate_history: list[tuple[float, tuple[float, ...]]] = []

        # Window cursors into the ledger: rows (arrival order) and the
        # completion log consumed so far by the estimation-window stats.
        self._row_cursor = 0
        self._done_cursor = 0
        self._rejected = [0] * len(self.classes)
        self._degraded_from = [0] * len(self.classes)
        self._degraded_to = [0] * len(self.classes)
        # Validated degrade targets per origin class, resolved lazily (the
        # degrade_target contract: a pure function of the origin class).
        self._degrade_targets: dict[int, int] = {}

        initial_rates = self.controller.current_rates
        if len(initial_rates) != len(self.classes):
            raise SimulationError("controller rate vector length does not match classes")
        self.server = server if server is not None else RateScalableServers()
        if autoscaler is not None and not hasattr(self.server, "apply_fleet_event"):
            raise SimulationError(
                f"{type(self.server).__name__} does not accept runtime fleet "
                f"events (no apply_fleet_event); autoscalers require a cluster "
                f"server model"
            )
        supports_batched = getattr(self.server, "supports_batched", False)
        window_scoped = admission is None or getattr(admission, "window_scoped", False)
        if batched is None:
            batched = supports_batched and window_scoped
        elif batched:
            if not window_scoped:
                raise SimulationError(
                    f"{type(admission).__name__} is not window_scoped (its "
                    "decisions read live per-arrival state), so it cannot run "
                    "on the batched hot path; pass batched=False"
                )
            if not supports_batched:
                raise SimulationError(
                    f"{type(self.server).__name__} does not support the batched "
                    "hot path; pass batched=False"
                )
        self.batched = bool(batched)
        if telemetry is not None:
            self.server.attach_telemetry(telemetry)
        self.server.bind(
            self.engine,
            self.classes,
            self._on_completion,
            ledger=self.ledger,
            batched=self.batched,
        )
        self.server.apply_rates(initial_rates)
        self.rate_history.append((0.0, tuple(initial_rates)))

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _schedule_first_arrivals(self) -> None:
        for index, source in enumerate(self.sources):
            gap = source.next_interarrival()
            if np.isfinite(gap):
                self.engine.schedule_after(gap, self._make_arrival(index), label=f"arrival-{index}")

    def _queue_block(self, bound: float, *, inclusive: bool = False) -> None:
        """Pre-draw and submit every arrival before ``bound`` (batched path).

        One ``append_batch`` + ``submit_batch`` per estimation window
        replaces one engine event per arrival.  Per-class blocks are merged
        with a stable argsort on arrival time, so rows keep global time
        order and same-time arrivals keep class order — the order the
        per-event path produces for simultaneous first arrivals (scheduled
        class by class); later cross-class ties are ordered by class here
        versus by scheduling sequence there, a measure-zero distinction for
        continuous workloads.
        """
        per_class = [source.draw_block(bound, inclusive=inclusive) for source in self.sources]
        sizes_per_class = [block[0].shape[0] for block in per_class]
        total = sum(sizes_per_class)
        if total == 0:
            return
        times = np.concatenate([block[0] for block in per_class])
        sizes = np.concatenate([block[1] for block in per_class])
        classes = np.repeat(np.arange(len(self.sources), dtype=np.int64), sizes_per_class)
        order = np.argsort(times, kind="stable")
        times, sizes, classes = times[order], sizes[order], classes[order]
        if self.admission is not None:
            # One block-level decision pass per window, before any fleet
            # cut: window_scoped policies see only boundary state, so the
            # whole block is decidable here.  Shed rows are appended (origin
            # class, SHED disposition) but excluded from submission; the
            # fleet-cut segmentation below then runs over admitted arrivals
            # only.
            decisions = self._decide_block(classes, sizes, times)
            served = classes
            degrade = decisions == int(AdmissionDecision.DEGRADE)
            if degrade.any():
                if bool((classes[degrade] == len(self.classes) - 1).any()):
                    raise SimulationError(
                        f"{type(self.admission).__name__} degraded class "
                        f"{len(self.classes) - 1}, which has no lower class"
                    )
                served = classes.copy()
                served[degrade] = self._degrade_lut()[classes[degrade]]
                for origin, count in enumerate(
                    np.bincount(classes[degrade], minlength=len(self.classes))
                ):
                    self._degraded_from[origin] += int(count)
                for target, count in enumerate(
                    np.bincount(served[degrade], minlength=len(self.classes))
                ):
                    self._degraded_to[target] += int(count)
            shed = decisions == int(AdmissionDecision.SHED)
            if shed.any():
                for origin, count in enumerate(
                    np.bincount(classes[shed], minlength=len(self.classes))
                ):
                    self._rejected[origin] += int(count)
            all_rids = self.ledger.append_batch(
                served, times, sizes, dispositions=decisions.astype(np.uint8)
            )
            if self.telemetry is not None:
                self.telemetry.on_admission_block(classes, decisions)
            admitted = ~shed
            rids = all_rids[admitted]
            submit_times = times[admitted]
        else:
            rids = self.ledger.append_batch(classes, times, sizes)
            submit_times = times
        cuts = self.server.block_boundaries(self.engine.now, bound)
        if cuts:
            # The model changes state inside this window (cluster fleet
            # events): cut the block there and hand every later segment to a
            # scheduled event at its cut instant, so its arrivals are
            # dispatched under the post-event fleet.  An arrival exactly on
            # a cut lands in the later segment (``side="left"``), and the
            # bind-time fleet event at the same instant carries the lower
            # sequence number — per-event tie semantics on both counts.
            edges = np.searchsorted(
                submit_times, np.asarray(cuts, dtype=np.float64), side="left"
            ).tolist()
            if edges[0]:
                self.server.submit_batch(rids[: edges[0]])
            for index, edge in enumerate(edges):
                end = edges[index + 1] if index + 1 < len(edges) else rids.shape[0]
                if end > edge:
                    self.engine.schedule_at(
                        cuts[index],
                        partial(self.server.submit_batch, rids[edge:end]),
                        label="block",
                    )
        elif rids.size:
            self.server.submit_batch(rids)
        if self.telemetry is not None:
            self.telemetry.on_batch(self.engine.now, total)

    def _sync_completions(self, now: float) -> None:
        """Drain the server model to ``now`` and log the merged completions."""
        rids = self.server.drain(now)
        if rids.size:
            self.ledger.log_completions(rids)
        if self.telemetry is not None:
            self.telemetry.on_drain(now, int(rids.size))

    def _make_arrival(self, class_index: int):
        ledger = self.ledger
        server = self.server
        engine = self.engine
        telemetry = self.telemetry

        def handle() -> None:
            source = self.sources[class_index]
            size = source.next_size()
            if self.admission is None:
                server.submit(ledger.append(class_index, engine.now, size))
            else:
                decision = self.admission.decide(class_index, size, self._system_snapshot())
                if isinstance(decision, bool) or not isinstance(decision, AdmissionDecision):
                    raise SimulationError(
                        f"{type(self.admission).__name__}.decide() returned "
                        f"{decision!r}; an AdmissionDecision is required"
                    )
                if telemetry is not None:
                    telemetry.on_admission(class_index, decision)
                if decision is AdmissionDecision.ACCEPT:
                    server.submit(ledger.append(class_index, engine.now, size))
                elif decision is AdmissionDecision.DEGRADE:
                    target = self._degrade_target(class_index)
                    self._degraded_from[class_index] += 1
                    self._degraded_to[target] += 1
                    server.submit(
                        ledger.append(
                            target, engine.now, size, disposition=DISPOSITION_DEGRADED
                        )
                    )
                else:
                    ledger.append(class_index, engine.now, size, disposition=DISPOSITION_SHED)
                    self._rejected[class_index] += 1
            gap = source.next_interarrival()
            if np.isfinite(gap):
                engine.schedule_after(gap, handle, label=f"arrival-{class_index}")

        return handle

    def _system_snapshot(self) -> SystemSnapshot:
        allocation = getattr(self.controller, "current_allocation", None)
        estimated = (
            tuple(allocation.offered_loads)
            if allocation is not None
            else tuple(0.0 for _ in self.classes)
        )
        return SystemSnapshot(
            time=self.engine.now,
            backlogs=self.server.backlogs(),
            estimated_loads=estimated,
        )

    def _decide_block(
        self, classes: np.ndarray, sizes: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        decisions = self.admission.decide_block(classes, sizes, times, self._system_snapshot())
        decisions = np.asarray(decisions, dtype=np.int64)
        if decisions.shape != classes.shape:
            raise SimulationError(
                f"{type(self.admission).__name__}.decide_block() returned "
                f"{decisions.shape[0] if decisions.ndim == 1 else decisions.shape} "
                f"decisions for {classes.shape[0]} arrivals"
            )
        if decisions.size and (
            decisions.min() < int(AdmissionDecision.ACCEPT)
            or decisions.max() > int(AdmissionDecision.SHED)
        ):
            raise SimulationError(
                f"{type(self.admission).__name__}.decide_block() returned values "
                "outside the AdmissionDecision range"
            )
        return decisions

    def _degrade_target(self, class_index: int) -> int:
        """Resolve and validate a policy's degrade target for one class."""
        target = self._degrade_targets.get(class_index)
        if target is None:
            target = int(self.admission.degrade_target(class_index))
            if not class_index < target < len(self.classes):
                raise SimulationError(
                    f"{type(self.admission).__name__}.degrade_target({class_index}) "
                    f"returned {target}; a strictly lower class in "
                    f"({class_index}, {len(self.classes)}) is required"
                )
            self._degrade_targets[class_index] = target
        return target

    def _degrade_lut(self) -> np.ndarray:
        """Per-class degrade targets as a gather table (batched path).

        The last class has no lower class; the caller rejects DEGRADE
        decisions for it before gathering, so its slot is never read.
        """
        num_classes = len(self.classes)
        lut = np.empty(num_classes, dtype=np.int64)
        for c in range(num_classes - 1):
            lut[c] = self._degrade_target(c)
        lut[num_classes - 1] = num_classes - 1
        return lut

    def _on_completion(self, rid: int) -> None:
        """Per-completion hook: a no-op on the columnar pipeline.

        All completion accounting (window slowdowns, monitor samples,
        per-class counts) is derived from the ledger columns in bulk, so the
        default scenario needs no per-request work here.  Subclasses may
        override to stream completions elsewhere (the event-throughput bench
        uses this to retain the seed's object-per-request path as a
        baseline).
        """

    def _window_stats(self) -> tuple[tuple[int, ...], tuple[float, ...], tuple[float, ...]]:
        """Arrivals, offered work and mean slowdowns since the last boundary.

        Slices the ledger columns past the window cursors and reduces with
        ``np.bincount``, which accumulates in input order — the sums are
        bit-identical to the per-event ``+=`` bookkeeping they replaced.
        """
        num_classes = len(self.classes)
        row_end = len(self.ledger)
        arrived = self.ledger.class_index[self._row_cursor : row_end]
        sizes = self.ledger.size[self._row_cursor : row_end]
        if self.admission is not None:
            # Shed rows never enter service: the controller allocates rates
            # for admitted traffic only.  The filter preserves relative
            # order, so the bincount sums stay bit-identical to a run that
            # never appended the shed rows.
            kept = self.ledger.disposition[self._row_cursor : row_end] != DISPOSITION_SHED
            if not kept.all():
                arrived = arrived[kept]
                sizes = sizes[kept]
        self._row_cursor = row_end
        arrivals = np.bincount(arrived, minlength=num_classes)
        work = np.bincount(arrived, weights=sizes, minlength=num_classes)

        done_end = self.ledger.num_completed
        done = self.ledger.completed_ids[self._done_cursor : done_end]
        self._done_cursor = done_end
        completed = self.ledger.class_index[done]
        slowdown_sums = np.bincount(
            completed, weights=self.ledger.slowdowns(done), minlength=num_classes
        )
        slowdown_counts = np.bincount(completed, minlength=num_classes)
        slowdowns = tuple(
            (float(s) / int(c)) if c else float("nan")
            for s, c in zip(slowdown_sums, slowdown_counts)
        )
        return (
            tuple(int(a) for a in arrivals),
            tuple(float(w) for w in work),
            slowdowns,
        )

    def _window_boundary(self) -> None:
        if self.batched:
            # Completions first: everything the servers finished up to this
            # boundary must be in the ledger before the window statistics
            # are cut.  Then, after the controller has spoken, pre-draw the
            # next window's arrival block.
            self._sync_completions(self.engine.now)
        arrivals, work, slowdowns = self._window_stats()
        if getattr(self.controller, "wants_slowdown_feedback", False):
            self.controller.observe_window(
                self.engine.now, self.config.window, arrivals, work, slowdowns=slowdowns
            )
        else:
            self.controller.observe_window(self.engine.now, self.config.window, arrivals, work)
        rates = tuple(self.controller.current_rates)
        self.server.apply_rates(rates)
        self.rate_history.append((self.engine.now, rates))
        if self.telemetry is not None:
            self.telemetry.on_window(self, arrivals, work, slowdowns, rates)
        if self.autoscaler is not None:
            # The autoscaler reads the boundary state the controller just
            # acted on and its events are applied synchronously, *before*
            # admission re-budgets (quotas see the new fleet) and before
            # the next window's arrival block is drawn — the one ordering
            # that is identical on both hot paths.
            events = self.autoscaler.observe_boundary(
                self.engine.now, self.config.window, arrivals, work, rates, self.server
            )
            if events:
                for event in events:
                    self.server.apply_fleet_event(event)
                self.autoscale_events.extend(events)
                if self.telemetry is not None:
                    self.telemetry.on_autoscale(events, self.server)
        if self.admission is not None:
            # After the controller's new rates are in force, before the next
            # window's arrivals: window_scoped policies refresh their whole
            # decision state here, identically on both hot paths.
            self.admission.observe_window(
                self._system_snapshot(), self.server, self.config.window
            )
        next_boundary = self.engine.now + self.config.window
        if self.batched:
            bound = min(next_boundary, self.config.horizon)
            if bound > self.engine.now:
                self._queue_block(bound)
        if next_boundary <= self.config.horizon:
            self.engine.schedule_at(next_boundary, self._window_boundary, label="window")

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the simulation and return the collected results."""
        if self.telemetry is not None:
            self.telemetry.on_run_start(self)
        if self.admission is not None:
            # The initial window observation (time 0, initial allocation):
            # budget-style policies derive their first window's quotas here.
            self.admission.observe_window(
                self._system_snapshot(), self.server, self.config.window
            )
        if self.batched:
            # Scheduled rather than submitted synchronously: fleet events at
            # t=0 were scheduled at bind time (lower sequence numbers), so
            # they apply before the first block is dispatched — the same
            # order the per-event path gives arrivals at the start instant.
            self.engine.schedule_at(
                0.0,
                partial(self._queue_block, min(self.config.window, self.config.horizon)),
                label="block",
            )
        else:
            self._schedule_first_arrivals()
        self.engine.schedule_at(self.config.window, self._window_boundary, label="window")
        self.engine.run_until(self.config.horizon)
        if self.batched:
            # Arrivals landing exactly on the horizon fire after the final
            # window boundary on the per-event path; release them now, then
            # flush the servers' last partial window of completions.
            self._queue_block(self.config.horizon, inclusive=True)
            self._sync_completions(self.config.horizon)
        num_classes = len(self.classes)
        # Every arrival — admitted, degraded or shed — has a ledger row.
        # Shed rows sit under their origin class; degraded rows under their
        # target class, so generation counts shift them back to the class
        # that generated them.
        rows = np.bincount(self.ledger.class_index, minlength=num_classes)
        completed = np.bincount(
            self.ledger.class_index[self.ledger.completed_ids], minlength=num_classes
        )
        if self.telemetry is not None:
            self.telemetry.on_run_end(self)
        return SimulationResult(
            classes=self.classes,
            config=self.config,
            trace=self.trace,
            monitor=self.monitor,
            controller=self.controller,
            rate_history=self.rate_history,
            generated_counts=tuple(
                int(n) + source - target
                for n, source, target in zip(rows, self._degraded_from, self._degraded_to)
            ),
            completed_counts=tuple(int(c) for c in completed),
            rejected_counts=tuple(self._rejected),
            degraded_counts=tuple(self._degraded_from),
            degraded_into_counts=tuple(self._degraded_to),
            ledger=self.ledger,
            fleet_timeline=getattr(self.server, "fleet_timeline", None),
            dispatch_log=getattr(self.server, "dispatch_log", None)
            if getattr(self.server, "record_dispatch", False)
            else None,
            node_share_history=getattr(self.server, "share_history", None),
            autoscale_events=list(self.autoscale_events) if self.autoscaler is not None else None,
        )
