"""The discrete-event simulation engine.

A thin, explicit core: a clock, an event calendar and a run loop.  Model
components (generators, task servers, monitors) schedule callbacks on the
engine; the engine guarantees the clock never moves backwards and stops at a
configurable horizon.
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import SimulationError
from ..validation import require_non_negative
from .events import Event, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Event-driven simulation clock and dispatcher."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._listener: Callable[[Event], None] | None = None

    # ------------------------------------------------------------------ #
    # Clock and scheduling
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (useful for progress checks)."""
        return self._processed

    def set_listener(self, listener: Callable[[Event], None] | None) -> None:
        """Install (or clear) an observer called once per dispatched event.

        The listener fires after the clock has advanced to the event's time
        and before its callback runs; it must not schedule or dispatch.  One
        listener slot, not a list: the default ``None`` keeps the dispatch
        loop's overhead to a single comparison, which is what lets the
        telemetry layer promise a no-op fast path.
        """
        self._listener = listener

    def schedule_at(self, time: float, callback: Callable[[], None], *, label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``.

        Tolerance contract: requests strictly earlier than ``now`` are
        rejected, but a tolerance of ``1e-12`` absorbs float drift — model
        code frequently derives "the current time" through arithmetic such
        as ``start + k * window``, which can land a hair *below* the exact
        clock value.  Any ``time`` within ``now - 1e-12 <= time <= now``
        (including exactly ``now``) is accepted and clamped to ``now``, so
        the event fires immediately after the current one and the clock
        never moves backwards.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self._now}, requested={time})"
            )
        return self._queue.push(max(time, self._now), callback, label=label)

    def schedule_after(
        self, delay: float, callback: Callable[[], None], *, label: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` time units."""
        require_non_negative(delay, "delay")
        return self._queue.push(self._now + delay, callback, label=label)

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #
    def run_until(self, horizon: float) -> None:
        """Dispatch events in time order until the calendar is empty or the
        next event lies beyond ``horizon`` (the clock is then left at
        ``horizon``)."""
        if horizon < self._now:
            raise SimulationError(f"horizon {horizon} lies before the current time {self._now}")
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > horizon:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._dispatch(event)
            self._now = max(self._now, horizon)
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch a single event; returns ``False`` when the calendar is empty.

        Shares :meth:`run_until`'s dispatch body, so the same guards apply:
        stepping from inside a running callback raises (re-entrant dispatch
        would corrupt the clock), and a calendar that produces an event in
        the past raises instead of silently clamping time forward.
        """
        if self._running:
            raise SimulationError("step called re-entrantly")
        event = self._queue.pop()
        if event is None:
            return False
        self._running = True
        try:
            self._dispatch(event)
        finally:
            self._running = False
        return True

    def _dispatch(self, event: Event) -> None:
        """Advance the clock to ``event`` and run its callback (shared by
        :meth:`run_until` and :meth:`step`)."""
        if event.time < self._now - 1e-9:
            raise SimulationError(
                f"event calendar produced a past event ({event.time} < {self._now})"
            )
        self._now = max(self._now, event.time)
        if self._listener is not None:
            self._listener(event)
        event.callback()
        self._processed += 1
