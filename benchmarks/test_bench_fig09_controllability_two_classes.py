"""Figure 9: achieved slowdown ratios of two classes, targets 2, 4 and 8.

The paper's claims: targets 2 and 4 are achieved accurately across the load
range; the error grows for target 8 because the allocation becomes more
sensitive to load-estimation error.
"""

import numpy as np
import pytest

from repro.experiments import figure9

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig09_controllability_two_classes(benchmark, bench_config):
    result = run_and_report(benchmark, figure9, bench_config)

    assert len(result.rows) == 3 * len(bench_config.load_grid)
    targets = sorted({row["target_ratio"] for row in result.rows})
    assert targets == [2.0, 4.0, 8.0]

    def rows_for(target):
        return [r for r in result.rows if r["target_ratio"] == target]

    # Controllability: raising the target raises the achieved ratios.
    mean_achieved = {
        target: np.mean([r["achieved_ratio"] for r in rows_for(target)])
        for target in targets
    }
    assert mean_achieved[2.0] < mean_achieved[4.0] < mean_achieved[8.0]

    # Small targets are achieved within ~50% on average at bench scale.
    assert mean_achieved[2.0] == pytest.approx(2.0, rel=0.5)
    assert mean_achieved[4.0] == pytest.approx(4.0, rel=0.5)

    # Predictability: the achieved ratio exceeds 1 (higher class better) in
    # the large majority of sweep points.
    above_one = [r["achieved_ratio"] > 1.0 for r in result.rows]
    assert sum(above_one) >= len(above_one) - 2
