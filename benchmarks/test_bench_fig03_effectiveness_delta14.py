"""Figure 3: simulated vs expected slowdowns, two classes, deltas (1, 4).

Same sweep as Figure 2 with a wider differentiation target; the spacing
between the two classes should widen to roughly 4x while the class-1 curve
drops below its Figure-2 counterpart (it receives a larger residual share).
"""

import pytest

from repro.core import PsdSpec, expected_slowdowns
from repro.experiments import figure3

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig03_effectiveness_delta14(benchmark, bench_config):
    result = run_and_report(benchmark, figure3, bench_config)

    for row in result.rows:
        # Analytic spacing is exactly 4.
        assert row["expected_2"] / row["expected_1"] == pytest.approx(4.0)

    # Simulated ordering respects predictability in (at least) the large
    # majority of sweep points; with a 4x target the spacing is wide enough
    # that bench-scale noise rarely inverts it.
    orderings = [row["simulated_2"] > row["simulated_1"] for row in result.rows]
    assert sum(orderings) >= len(orderings) - 1
    achieved = [row["simulated_2"] / row["simulated_1"] for row in result.rows]
    assert 2.0 < sum(achieved) / len(achieved) < 7.0

    # Compared with deltas (1, 2), class 1 should now be better off and
    # class 2 worse off (Eq. 18 comparative statics), checked analytically.
    for load in bench_config.load_grid:
        classes = bench_config.classes_for_load(load, (1.0, 4.0))
        wide = expected_slowdowns(classes, PsdSpec.of(1, 4))
        narrow = expected_slowdowns(
            bench_config.classes_for_load(load, (1.0, 2.0)), PsdSpec.of(1, 2)
        )
        assert wide[0] < narrow[0]
        assert wide[1] > narrow[1]
