"""Figure 2: simulated vs expected slowdowns, two classes, deltas (1, 2).

Regenerates the load sweep of Fig. 2 and checks the paper's qualitative
claims: the simulated slowdowns track the Eq. 18 closed forms, grow with
load, and keep the 2:1 spacing between the classes.
"""

import pytest

from repro.experiments import figure2

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig02_effectiveness_two_classes(benchmark, bench_config):
    result = run_and_report(benchmark, figure2, bench_config)

    loads = result.column("load")
    expected_1 = result.column("expected_1")
    simulated_1 = result.column("simulated_1")
    simulated_2 = result.column("simulated_2")

    # Slowdown grows (super-linearly) with load for both curves.
    assert loads == sorted(loads)
    assert expected_1 == sorted(expected_1)
    assert simulated_1[-1] > simulated_1[0]
    assert simulated_2[-1] > simulated_2[0]

    # Simulated values track the Eq. 18 curves.  The Bounded Pareto tail makes
    # individual points noisy at bench scale, so the agreement is asserted on
    # the sweep as a whole rather than point-by-point.
    ratio_to_expected = [
        row[f"simulated_{i}"] / row[f"expected_{i}"]
        for row in result.rows
        for i in (1, 2)
    ]
    mean_agreement = sum(ratio_to_expected) / len(ratio_to_expected)
    assert 0.5 < mean_agreement < 1.6
    assert all(0.2 < r < 3.5 for r in ratio_to_expected)

    # Predictability: class 2 is slower than class 1 in the (large) majority
    # of sweep points, and the average spacing is near the target of 2.
    ratios = [row["simulated_2"] / row["simulated_1"] for row in result.rows]
    assert sum(r > 1.0 for r in ratios) >= len(ratios) - 1
    assert 1.2 < sum(ratios) / len(ratios) < 3.2
