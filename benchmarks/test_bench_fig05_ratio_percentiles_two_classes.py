"""Figure 5: percentiles of windowed slowdown ratios, two classes.

For delta ratios 2, 4 and 8 and every system load the bench reports the
5th/50th/95th percentile of the per-window class-2/class-1 slowdown ratio,
pooled over the replications — the exact series behind Fig. 5.
"""

import numpy as np
import pytest

from repro.experiments import figure5

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig05_ratio_percentiles_two_classes(benchmark, bench_config):
    result = run_and_report(benchmark, figure5, bench_config)

    # Three delta vectors x len(load_grid) rows, one ratio pair each.
    assert len(result.rows) == 3 * len(bench_config.load_grid)

    for row in result.rows:
        assert row["windows"] > 0
        assert row["p5"] <= row["median"] <= row["p95"]

    # The median windowed ratio tracks the target reasonably for targets 2
    # and 4 (relative error of the sweep-average median below ~50%).
    for target in (2.0, 4.0):
        medians = [r["median"] for r in result.rows if r["target_ratio"] == target]
        assert np.mean(medians) == pytest.approx(target, rel=0.5)

    # Heavy-tail asymmetry: on average the band extends further above the
    # median than below it (the paper's observation about Fig. 5).
    upper = np.mean([r["p95"] - r["median"] for r in result.rows])
    lower = np.mean([r["median"] - r["p5"] for r in result.rows])
    assert upper > lower

    # For the small target (2) at the lightest load the 5th percentile can
    # fall below 1 (short-term inversion); assert the band at light load is
    # at least wide enough to make that plausible.
    light = [
        r for r in result.rows
        if r["target_ratio"] == 2.0 and r["load"] == min(bench_config.load_grid)
    ]
    assert light and light[0]["p5"] < light[0]["median"]
