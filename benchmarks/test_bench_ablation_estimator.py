"""Ablation: load-estimator design choices.

The paper attributes the residual controllability error (Figs. 9-10) to
load-estimation error and fixes the estimator to "mean of the past 5
windows, re-allocated every 1000 time units".  This bench quantifies those
choices by running the same workload (two classes, target ratio 4, 70% load)
under:

* the paper's windowed estimator (history 5, window 1000),
* a short-history estimator (history 1),
* an EWMA estimator,
* an oracle that knows the true rates (no estimation error at all),
* the paper's estimator with a 4x longer re-allocation period.

The oracle's achieved ratio should be at least as accurate as any adaptive
estimator's, which is the paper's implicit claim.
"""

import dataclasses

import pytest

from repro.core import (
    ExponentialSmoothingEstimator,
    OracleLoadEstimator,
    PsdController,
    PsdSpec,
    WindowedLoadEstimator,
)
from repro.experiments import render_table
from repro.simulation import PsdServerSimulation, run_replications

TARGET_RATIO = 4.0
LOAD = 0.7


def make_controller_factory(kind, classes, spec):
    def factory():
        if kind == "oracle":
            estimator = OracleLoadEstimator(
                [c.arrival_rate for c in classes], [c.offered_load for c in classes]
            )
        elif kind == "windowed-5":
            estimator = WindowedLoadEstimator(
                len(classes),
                history=5,
                prior_arrival_rates=[c.arrival_rate for c in classes],
                prior_offered_loads=[c.offered_load for c in classes],
            )
        elif kind == "windowed-1":
            estimator = WindowedLoadEstimator(
                len(classes),
                history=1,
                prior_arrival_rates=[c.arrival_rate for c in classes],
                prior_offered_loads=[c.offered_load for c in classes],
            )
        elif kind == "ewma":
            estimator = ExponentialSmoothingEstimator(len(classes), smoothing=0.3)
        else:
            raise ValueError(kind)
        return PsdController(classes, spec, estimator=estimator)

    return factory


def run_variant(bench_config, kind, *, window_multiplier=1.0, seed=101):
    spec = PsdSpec.of(1, TARGET_RATIO)
    classes = bench_config.classes_for_load(LOAD, spec.deltas)
    measurement = bench_config.scaled_measurement()
    if window_multiplier != 1.0:
        measurement = dataclasses.replace(
            measurement, window=measurement.window * window_multiplier
        )
    factory = make_controller_factory(kind, classes, spec)

    def build(_, seed_seq):
        return PsdServerSimulation(classes, measurement, controller=factory(), seed=seed_seq).run()

    summary = run_replications(
        build, replications=bench_config.measurement.replications, base_seed=seed
    )
    achieved = summary.ratio_of_mean_slowdowns[1]
    return {
        "variant": kind if window_multiplier == 1.0 else f"{kind} (4x window)",
        "achieved_ratio": achieved,
        "target_ratio": TARGET_RATIO,
        "abs_error": abs(achieved - TARGET_RATIO),
        "class1_slowdown": summary.mean_slowdowns[0],
        "class2_slowdown": summary.mean_slowdowns[1],
    }


@pytest.mark.benchmark(group="ablations")
def test_ablation_load_estimator(benchmark, bench_config):
    def run_all(config):
        rows = [
            run_variant(config, "windowed-5"),
            run_variant(config, "windowed-1"),
            run_variant(config, "ewma"),
            run_variant(config, "oracle"),
            run_variant(config, "windowed-5", window_multiplier=4.0),
        ]
        return rows

    rows = benchmark.pedantic(run_all, args=(bench_config,), rounds=1, iterations=1)
    print()
    print(
        render_table(
            (
                "variant",
                "achieved_ratio",
                "target_ratio",
                "abs_error",
                "class1_slowdown",
                "class2_slowdown",
            ),
            rows,
        )
    )

    by_variant = {row["variant"]: row for row in rows}
    # Every variant differentiates in the right direction.
    for row in rows:
        assert row["achieved_ratio"] > 1.0

    # The paper's configuration lands in a sensible band around the target.
    assert 0.4 * TARGET_RATIO < by_variant["windowed-5"]["achieved_ratio"] < 2.0 * TARGET_RATIO

    # Removing estimation error entirely (oracle) must not be dramatically
    # worse than the adaptive estimators; this supports the paper's argument
    # that estimation error is the dominant residual error source.
    adaptive_best = min(
        by_variant["windowed-5"]["abs_error"],
        by_variant["windowed-1"]["abs_error"],
        by_variant["ewma"]["abs_error"],
    )
    assert by_variant["oracle"]["abs_error"] <= adaptive_best + 1.5
