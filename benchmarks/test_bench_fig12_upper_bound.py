"""Figure 12: influence of the Bounded Pareto upper bound.

Upper bound swept over {100, 1000, 10000} with two classes (deltas 1, 2) at a
fixed load.  The paper's claims: the slowdowns increase with the bound
(heavier tail, larger E[X^2], essentially unchanged E[1/X]) and the
differentiation is unaffected.
"""

import numpy as np
import pytest

from repro.distributions import BoundedPareto
from repro.experiments import figure12

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig12_upper_bound(benchmark, bench_config):
    result = run_and_report(benchmark, figure12, bench_config)

    bounds = result.column("upper_bound")
    expected_1 = result.column("expected_1")
    expected_2 = result.column("expected_2")
    second_moments = result.column("second_moment")

    assert bounds == sorted(bounds)
    # Analytic slowdowns and E[X^2] grow with the upper bound.
    assert expected_1 == sorted(expected_1)
    assert expected_2 == sorted(expected_2)
    assert second_moments == sorted(second_moments)

    # E[1/X] is essentially independent of the bound (the paper's argument
    # for why the slowdown growth comes from the second moment alone).
    inverses = [
        BoundedPareto(bench_config.lower_bound, p, bench_config.shape).mean_inverse()
        for p in bounds
    ]
    assert max(inverses) / min(inverses) < 1.01

    # Simulated slowdowns stay positive and finite; their convergence slows
    # down as the tail gets heavier (documented in the driver note), so only
    # the analytic monotonicity is asserted strictly.
    for column in ("simulated_1", "simulated_2"):
        values = result.column(column)
        assert np.isfinite(values).all()
        assert all(v > 0 for v in values)
