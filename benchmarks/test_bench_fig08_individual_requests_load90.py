"""Figure 8: slowdowns of individual requests over a 1000-time-unit span, 90% load.

At heavy load the paper observed a 1000-unit span whose measured class-2 /
class-1 slowdown ratio was 0.33 against a target of 2 — i.e. the ordering can
invert entirely over short horizons.  The bench reports the same span summary
and checks that slowdowns are much larger than at 50% load (Fig. 7).
"""

import dataclasses

import pytest

from repro.experiments import figure7, figure8

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig08_individual_requests_load90(benchmark, bench_config):
    config = bench_config.with_measurement(
        dataclasses.replace(bench_config.measurement, replications=1)
    )
    result = run_and_report(benchmark, figure8, config)

    assert result.parameters["load"] == 0.9
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["requests"] > 0

    # The short-span ratio note exists and is a positive number; the paper's
    # measured value (0.33 vs a target of 2) shows it can land anywhere.
    ratio_notes = [n for n in result.notes if "over this span alone" in n]
    assert ratio_notes
    measured = float(ratio_notes[0].split(":")[1].split("(")[0])
    assert measured > 0.0

    # Heavy load produces visibly larger per-request slowdowns than 50% load.
    light = figure7(config)
    heavy_mean = max(row["mean_slowdown"] for row in result.rows)
    light_mean = max(row["mean_slowdown"] for row in light.rows)
    assert heavy_mean > light_mean
