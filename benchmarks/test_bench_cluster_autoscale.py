"""Autoscaling frontier: SLO fidelity vs node-hours under moving load.

Paper extension: the evaluation holds capacity fixed; real platforms size
the fleet to demand.  An 8-node fleet (each node an eighth of the single
server's capacity) is offered the two-class workload at mean system load
0.55, shaped by a diurnal cycle (amplitude 0.5, two periods over the
measured interval) with a flash crowd (x2 for two estimation windows) at
60% of the span.  The bench contrasts two ways of paying for that load:

* **static**: the full peak-sized fleet runs around the clock.  It holds
  the fig. 2 slowdown-ratio band and pays full freight.
* **target-tracking autoscaler** (``target=1.15, scale_in_cooldown=450``):
  starts at half fleet, reads the windowed monitor surface at estimation
  boundaries, and walks join/leave fleet events through warm-up and
  drain.  The claim pinned here: it *also* holds the ratio band while
  billing >= 25% fewer node-hours (draining nodes still paid for).

A second test pins the contract that makes the frontier trustworthy: the
scale decisions are deterministic — fleet timelines and autoscale event
streams are *bit-identical* between a serial run and ``workers=2``.
"""

import numpy as np
import pytest

from repro.core import PsdSpec
from repro.experiments import (
    AutoscaleBuild,
    ExperimentConfig,
    default_patterns,
    run_autoscale,
)
from repro.simulation import MeasurementConfig, ReplicationRunner

NUM_NODES = 8
#: Nodes live at t=0 for the scaled cell (half fleet; the rest are spares).
INITIAL_NODES = 4
#: Mean system load before pattern shaping; the diurnal peak + flash crowd
#: push the instantaneous load well above it.
LOAD = 0.55
#: Tuned operating point: a demand target slightly above nominal capacity
#: (the drain-backlog term inflates demand) and a scale-in cooldown of
#: ~3 estimation windows so the trough is tracked without join/leave flapping.
AUTOSCALER = "target_tracking"
AUTOSCALER_ARGS = ("target=1.15", "scale_in_cooldown=450")

#: Moderate-tail workload (upper bound 10): pooled mean slowdowns converge
#: within the horizon, keeping the band assertions tight.
CONFIG = ExperimentConfig(
    measurement=MeasurementConfig(
        warmup=2_000.0, horizon=14_000.0, window=500.0, replications=4
    ),
    load_grid=(0.9,),  # unused: the autoscale classes are built explicitly
    upper_bound=10.0,
    name="cluster-autoscale-bench",
)


@pytest.mark.benchmark(group="cluster")
def test_autoscale_frontier_vs_static_fleet(benchmark):
    config = CONFIG.with_autoscaler(AUTOSCALER, AUTOSCALER_ARGS)

    result = benchmark.pedantic(
        lambda: run_autoscale(
            config, load=LOAD, num_nodes=NUM_NODES, initial_nodes=INITIAL_NODES
        ),
        rounds=1,
        iterations=1,
    )

    assert [row["autoscaler"] for row in result.rows] == ["static", AUTOSCALER]
    static, scaled = result.rows

    print()
    print(
        f"  static ratio={static['ratio_2']:.2f} "
        f"node_hours={static['node_hours']:.0f} system={static['system_slowdown']:.1f}"
    )
    print(
        f"  {AUTOSCALER} ratio={scaled['ratio_2']:.2f} "
        f"node_hours={scaled['node_hours']:.0f} saving={scaled['saving']:.3f} "
        f"out={scaled['scale_out']} in={scaled['scale_in']} "
        f"system={scaled['system_slowdown']:.1f}"
    )
    benchmark.extra_info["autoscale_static_ratio"] = round(static["ratio_2"], 3)
    benchmark.extra_info["autoscale_static_node_hours"] = round(static["node_hours"], 1)
    benchmark.extra_info["autoscale_scaled_ratio"] = round(scaled["ratio_2"], 3)
    benchmark.extra_info["autoscale_scaled_node_hours"] = round(scaled["node_hours"], 1)
    benchmark.extra_info["autoscale_saving"] = round(scaled["saving"], 4)
    benchmark.extra_info["autoscale_scale_out"] = scaled["scale_out"]
    benchmark.extra_info["autoscale_scale_in"] = scaled["scale_in"]
    benchmark.extra_info["autoscale_system_slowdown"] = round(
        scaled["system_slowdown"], 2
    )

    # Sanity: the moving workload itself honours the paper's differentiation
    # — the static peak fleet's achieved ratio sits inside the fig. 2 band.
    assert 1.4 < static["ratio_2"] < 2.8, static["ratio_2"]
    # The frontier claim, axis 1: scaling must not break the PSD loop.
    assert 1.4 < scaled["ratio_2"] < 2.8, scaled["ratio_2"]
    # Axis 2: the scaler bills at least 25% fewer node-hours than static.
    assert scaled["saving"] >= 0.25, scaled["saving"]
    assert scaled["node_hours"] <= 0.75 * static["node_hours"]
    # The savings come from real scale activity in both directions (the
    # trough is tracked down, the peak and the flash crowd are re-grown).
    assert scaled["scale_out"] > 0 and scaled["scale_in"] > 0
    # The static baseline never scales and its saving is 0 by definition.
    assert static["scale_out"] == static["scale_in"] == 0
    assert static["saving"] == 0.0


def _build() -> AutoscaleBuild:
    spec = PsdSpec.of(1, 2)
    scaled = CONFIG.scaled_measurement()
    return AutoscaleBuild(
        CONFIG.classes_for_load(LOAD, spec.deltas),
        scaled,
        spec,
        num_nodes=NUM_NODES,
        capacities=tuple(1.0 / NUM_NODES for _ in range(NUM_NODES)),
        dispatch_entropy=CONFIG.base_seed,
        pattern_entropy=CONFIG.base_seed,
        patterns=default_patterns(scaled),
        initial_nodes=INITIAL_NODES,
        autoscaler=AUTOSCALER,
        autoscaler_args=AUTOSCALER_ARGS,
    )


@pytest.mark.benchmark(group="cluster")
def test_autoscale_fleet_timeline_worker_identical(benchmark):
    """Scale decisions on worker processes must not perturb a single bit.

    The same scaled cell, serial vs ``workers=2``: every replication's
    autoscale event stream, fleet timeline, generated counts and slowdown
    statistics must be *equal*, not approximately equal — the policy reads
    only the windowed monitor surface, so process placement is invisible.
    """

    def both():
        serial = ReplicationRunner(
            replications=CONFIG.measurement.replications,
            base_seed=np.random.SeedSequence(entropy=CONFIG.base_seed),
            workers=1,
        ).run(_build())
        parallel = ReplicationRunner(
            replications=CONFIG.measurement.replications,
            base_seed=np.random.SeedSequence(entropy=CONFIG.base_seed),
            workers=2,
        ).run(_build())
        return serial, parallel

    serial, parallel = benchmark.pedantic(both, rounds=1, iterations=1)

    assert parallel.per_class_slowdowns == serial.per_class_slowdowns
    assert parallel.system_slowdown == serial.system_slowdown
    any_events = False
    for parallel_result, serial_result in zip(parallel.results, serial.results):
        assert parallel_result.autoscale_events == serial_result.autoscale_events
        assert parallel_result.fleet_timeline == serial_result.fleet_timeline
        assert parallel_result.generated_counts == serial_result.generated_counts
        assert parallel_result.per_class_mean_slowdowns() == (
            serial_result.per_class_mean_slowdowns()
        )
        any_events = any_events or bool(parallel_result.autoscale_events)
    assert any_events, "no replication ever scaled"
