"""Figure 4: simulated vs expected slowdowns, three classes, deltas (1, 2, 3)."""

import pytest

from repro.experiments import figure4

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig04_effectiveness_three_classes(benchmark, bench_config):
    result = run_and_report(benchmark, figure4, bench_config)

    for row in result.rows:
        # Analytic curves keep the exact 1:2:3 spacing at every load.
        assert row["expected_2"] / row["expected_1"] == pytest.approx(2.0)
        assert row["expected_3"] / row["expected_1"] == pytest.approx(3.0)

    # Simulated ordering (class 1 best, class 3 worst) holds in the large
    # majority of sweep points.
    orderings = [row["simulated_1"] < row["simulated_3"] for row in result.rows]
    assert sum(orderings) >= len(orderings) - 1

    # Slowdowns increase with load for every class (analytically exact), and
    # the simulated end points reflect it.
    for column in ("expected_1", "expected_2", "expected_3"):
        values = result.column(column)
        assert values == sorted(values)
    assert result.rows[-1]["simulated_1"] > result.rows[0]["simulated_1"]
