"""Dynamic fleet churn: controller re-convergence vs a churn-blind baseline.

Paper extension: the PSD feedback loop over a fleet whose membership changes
mid-run.  A two-node 2:1 capacity mix (same total capacity as the paper's
single server) serves the two-class workload at system load 0.9 under the
feedback controller while the fast node is killed at t=6000 time units and
restored at t=6200, and the bench contrasts two ways of living through the
outage:

* **churn-aware**: the :class:`~repro.cluster.FleetSchedule` drains the
  node (``leave``) and rejoins it (``join``); ``weighted_jsq`` dispatch and
  ``CapacityProportional`` partitioning re-normalise over the live capacity
  vector at each event.  The achieved class-2/class-1 slowdown ratio stays
  within the fig. 2 band in every segment — before the kill, through the
  outage+drain, and in the recovery window — i.e. the controller re-converges
  within a bounded window (one recovery segment) of each event.
* **churn-blind**: the same outage hits a fleet with no drain semantics —
  the node degrades to (effectively) zero capacity while ``round_robin`` +
  ``EqualSplit`` keep feeding it requests and rates.  Requests pile up on
  the dead node and never finish, the slow node runs past its capacity, and
  the run *stalls*: an order of magnitude more unfinished requests, a far
  larger system slowdown, and a ratio pinned far from the target for the
  rest of the horizon.

A second test pins the compatibility contract: the *empty* ``FleetSchedule``
reproduces the schedule-less cluster bit for bit on the heterogeneous cell
the existing cluster benches exercise.
"""

import numpy as np
import pytest

from repro.cluster import FleetEvent, FleetSchedule, resolve_capacities
from repro.core import PsdSpec
from repro.experiments import ClusterScalingBuild, ExperimentConfig
from repro.simulation import MeasurementConfig, ReplicationRunner

NUM_NODES = 2
MIX = "2:1"
LOAD = 0.9
#: Outage timing in abstract time units: kill the fast node, restore 200 tu
#: later (the drain finishes within the outage; the backlog the missing
#: capacity leaves behind clears within the recovery margin below).
KILL_AT = 6_000.0
RESTORE_AT = 6_200.0
#: Re-convergence bound asserted on: the ratio must be back inside the
#: fig. 2 band for the whole segment starting this many time units after the
#: restore (4 estimation windows).
RECOVERY_MARGIN = 2_000.0

#: Moderate-tail workload (upper bound 10): segment-level mean slowdowns
#: converge within the trimmed horizon, keeping the band assertions tight.
CONFIG = ExperimentConfig(
    measurement=MeasurementConfig(
        warmup=2_000.0, horizon=14_000.0, window=500.0, replications=4
    ),
    load_grid=(LOAD,),
    upper_bound=10.0,
    name="cluster-churn-bench",
)


def _replicate(build):
    runner = ReplicationRunner(
        replications=CONFIG.measurement.replications,
        base_seed=np.random.SeedSequence(entropy=CONFIG.base_seed),
        workers=1,
    )
    return runner.run(build)


def _segment_ratio(summary, start_tu, end_tu, time_unit):
    """Class-2/class-1 ratio of pooled mean slowdowns for completions in
    ``[start_tu, end_tu)`` (abstract time units), across all replications."""
    sums, counts = np.zeros(2), np.zeros(2)
    for result in summary.results:
        ledger = result.ledger
        ids = ledger.completed_ids
        completion = ledger.completion_time[ids]
        keep = (completion >= start_tu * time_unit) & (completion < end_tu * time_unit)
        ids = ids[keep]
        classes = ledger.class_index[ids]
        sums += np.bincount(classes, weights=ledger.slowdowns(ids), minlength=2)
        counts += np.bincount(classes, minlength=2)
    means = sums / counts
    return float(means[1] / means[0])


def _unfinished(summary) -> int:
    """Requests admitted but never completed, summed over replications."""
    return sum(
        sum(r.generated_counts) - sum(r.completed_counts) - sum(r.rejected_counts)
        for r in summary.results
    )


@pytest.mark.benchmark(group="cluster")
def test_cluster_churn_reconvergence(benchmark):
    spec = PsdSpec.of(1, 2)
    classes = CONFIG.classes_for_load(LOAD, spec.deltas)
    scaled = CONFIG.scaled_measurement()
    time_unit = CONFIG.service_distribution().mean()
    capacities = resolve_capacities(MIX, NUM_NODES)

    aware_fleet = FleetSchedule(
        events=(
            FleetEvent(time=KILL_AT, action="leave", node=0),
            FleetEvent(time=RESTORE_AT, action="join", node=0),
        )
    ).scaled_to_time_units(time_unit)
    # The churn-blind emulation of the same outage: no drain semantics, the
    # node just stops making progress while blind dispatch keeps feeding it.
    blind_fleet = FleetSchedule(
        events=(
            FleetEvent(time=KILL_AT, action="set_capacity", node=0, capacity=1e-9),
            FleetEvent(
                time=RESTORE_AT, action="set_capacity", node=0, capacity=capacities[0]
            ),
        )
    ).scaled_to_time_units(time_unit)

    def build(policy, partitioner, fleet):
        return ClusterScalingBuild(
            classes,
            scaled,
            spec,
            num_nodes=NUM_NODES,
            policy=policy,
            dispatch_entropy=CONFIG.base_seed,
            capacities=capacities,
            partitioner=partitioner,
            fleet=fleet,
        )

    def sweep():
        aware = _replicate(build("weighted_jsq", "capacity", aware_fleet))
        blind = _replicate(build("round_robin", "equal", blind_fleet))
        return aware, blind

    aware, blind = benchmark.pedantic(sweep, rounds=1, iterations=1)

    segments = {
        "pre_kill": (CONFIG.measurement.warmup, KILL_AT),
        "disturbed": (KILL_AT, RESTORE_AT + RECOVERY_MARGIN),
        "recovered": (RESTORE_AT + RECOVERY_MARGIN, CONFIG.measurement.horizon),
    }
    print()
    stats = {}
    for label, summary in (("aware", aware), ("blind", blind)):
        ratios = {
            name: _segment_ratio(summary, lo, hi, time_unit)
            for name, (lo, hi) in segments.items()
        }
        unfinished = _unfinished(summary)
        system = summary.system_slowdown.mean
        stats[label] = (ratios, system, unfinished)
        print(
            f"  {label:<6} ratio pre={ratios['pre_kill']:.2f} "
            f"dist={ratios['disturbed']:.2f} rec={ratios['recovered']:.2f} "
            f"system={system:.1f} unfinished={unfinished}"
        )
        for name, value in ratios.items():
            benchmark.extra_info[f"churn_{label}_ratio_{name}"] = round(value, 3)
        benchmark.extra_info[f"churn_{label}_system_slowdown"] = round(system, 2)
        benchmark.extra_info[f"churn_{label}_unfinished"] = unfinished

    aware_ratios, aware_system, aware_unfinished = stats["aware"]
    blind_ratios, blind_system, blind_unfinished = stats["blind"]

    # The churn-aware fleet holds the fig. 2 band in *every* segment — the
    # controller re-converges within the bounded recovery window after both
    # the kill and the restore (and barely leaves the band in between: the
    # drain keeps the in-flight work finishing while partitioning
    # re-normalises over the survivor).
    for name, ratio in aware_ratios.items():
        assert 1.4 < ratio < 2.8, (name, ratio)
    assert abs(aware_ratios["recovered"] - aware_ratios["pre_kill"]) < 0.6, aware_ratios
    # Aware runs finish what they admit (the drained node completed its
    # queue; only the usual end-of-horizon stragglers remain).
    assert aware_unfinished < 0.01 * sum(
        sum(r.generated_counts) for r in aware.results
    ), aware_unfinished

    # The churn-blind baseline stalls: requests frozen on the dead node and
    # an overloaded slow node leave an order of magnitude more unfinished
    # work, a far larger system slowdown, and a ratio that never returns to
    # the target after the outage.
    assert blind_unfinished > 10 * max(aware_unfinished, 1), (
        blind_unfinished,
        aware_unfinished,
    )
    assert blind_system > 5.0 * aware_system, (blind_system, aware_system)
    assert abs(blind_ratios["recovered"] - 2.0) > 2 * abs(
        aware_ratios["recovered"] - 2.0
    ), (blind_ratios, aware_ratios)


@pytest.mark.benchmark(group="cluster")
def test_empty_fleet_schedule_bit_identical(benchmark):
    """The empty schedule must not perturb a single bit.

    One replication of the heterogeneous weighted_jsq cell (the same fleet
    the cluster-hetero bench pins), with ``fleet=None`` vs the empty
    ``FleetSchedule()``: dispatch decisions, rate history and per-class
    slowdowns must be *equal*, not approximately equal — the fleet machinery
    reduces to the pre-fleet arithmetic on a static cluster.
    """
    spec = PsdSpec.of(1, 2)
    classes = CONFIG.classes_for_load(LOAD, spec.deltas)
    scaled = CONFIG.scaled_measurement()
    capacities = resolve_capacities(MIX, NUM_NODES)

    def run(fleet):
        build = ClusterScalingBuild(
            classes,
            scaled,
            spec,
            num_nodes=NUM_NODES,
            policy="weighted_jsq",
            dispatch_entropy=CONFIG.base_seed,
            capacities=capacities,
            partitioner="capacity",
            fleet=fleet,
            record_dispatch=True,
        )
        return _replicate(build)

    def both():
        return run(None), run(FleetSchedule())

    bare, empty = benchmark.pedantic(both, rounds=1, iterations=1)
    for bare_result, empty_result in zip(bare.results, empty.results):
        assert empty_result.dispatch_log == bare_result.dispatch_log
        assert empty_result.rate_history == bare_result.rate_history
        assert empty_result.per_class_mean_slowdowns() == bare_result.per_class_mean_slowdowns()
        assert empty_result.generated_counts == bare_result.generated_counts
    assert empty.per_class_slowdowns == bare.per_class_slowdowns
    assert empty.system_slowdown == bare.system_slowdown
