"""Figure 7: slowdowns of individual requests over a 1000-time-unit span, 50% load.

The paper's point is the *weak* short-timescale predictability: over a span
this short, per-request slowdowns of the two classes interleave and the
target ordering is frequently violated.  The bench prints the per-class
summary of the span and asserts that the interleaving is present.
"""

import dataclasses

import pytest

from repro.experiments import figure7

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig07_individual_requests_load50(benchmark, bench_config):
    # The short-timescale figures inspect a single run's trace, so one
    # replication is sufficient (and much cheaper).
    config = bench_config.with_measurement(
        dataclasses.replace(bench_config.measurement, replications=1)
    )
    result = run_and_report(benchmark, figure7, config)

    assert result.parameters["load"] == 0.5
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["requests"] > 0
        assert row["max_slowdown"] >= row["mean_slowdown"] >= 0.0

    # The inversion-fraction note quantifies the short-timescale weakness:
    # at 50% load a non-trivial fraction of (class-1, class-2) pairs violates
    # the target ordering.
    inversion_notes = [n for n in result.notes if "request pairs" in n]
    assert inversion_notes, "driver must report the pairwise inversion fraction"
    fraction = float(inversion_notes[0].rsplit(":", 1)[1])
    assert 0.0 <= fraction <= 1.0
    assert fraction > 0.01
