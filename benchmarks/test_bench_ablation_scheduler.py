"""Ablation: how the rate allocation is realised on the processor.

The paper's simulation model grants every class an idealised task server
running at exactly the allocated rate (a fluid GPS abstraction).  A real
server realises the rates with a packet-by-packet proportional-share
scheduler on one full-speed processor.  This bench compares, for the same
workload (two classes, 70% load):

* the idealised per-class task servers (the paper's model),
* a shared processor scheduled by WFQ, start-time fair queueing, lottery
  scheduling and deficit weighted round robin (weights = allocated rates),
* a shared processor with strict priority (the related-work baseline).

Two delta vectors, (1, 2) and (1, 8), are used so that *controllability* can
be checked: the proportional-share realisations move their achieved ratio
when the operator changes the target, strict priority does not (its spacing
is dictated by the load split, which is the paper's argument for why priority
scheduling cannot provide PSD).
"""

import numpy as np
import pytest

from repro.core import PsdSpec
from repro.experiments import render_table
from repro.scheduling import (
    DeficitWeightedRoundRobin,
    LotteryScheduler,
    StartTimeFairQueueing,
    StrictPriorityScheduler,
    WeightedFairQueueing,
)
from repro.simulation import (
    RateScalableServers,
    Scenario,
    SharedProcessorServer,
    run_replications,
)

LOAD = 0.7


def run_variant(bench_config, name, deltas, *, seed=313):
    spec = PsdSpec(deltas)
    classes = bench_config.classes_for_load(LOAD, deltas)
    measurement = bench_config.scaled_measurement()

    # One Scenario assembly, one ServerModel per realisation.
    def server_for(variant):
        if variant == "task-servers":
            return RateScalableServers()
        if variant == "wfq":
            return SharedProcessorServer(WeightedFairQueueing(2))
        if variant == "sfq":
            return SharedProcessorServer(StartTimeFairQueueing(2))
        if variant == "lottery":
            return SharedProcessorServer(LotteryScheduler(2, rng=np.random.default_rng(seed)))
        if variant == "drr":
            return SharedProcessorServer(
                DeficitWeightedRoundRobin(2, quantum=classes[0].service.mean())
            )
        if variant == "strict-priority":
            return SharedProcessorServer(StrictPriorityScheduler(2))
        raise ValueError(variant)

    def build(_, seed_seq):
        return Scenario(
            classes, measurement, server=server_for(name), spec=spec, seed=seed_seq
        ).run()

    summary = run_replications(
        build, replications=bench_config.measurement.replications, base_seed=seed
    )
    slowdowns = summary.mean_slowdowns
    return {
        "realisation": name,
        "deltas": deltas,
        "class1_slowdown": slowdowns[0],
        "class2_slowdown": slowdowns[1],
        "achieved_ratio": summary.ratio_of_mean_slowdowns[1],
        "target_ratio": deltas[1] / deltas[0],
    }


@pytest.mark.benchmark(group="ablations")
def test_ablation_scheduler_realisation(benchmark, bench_config):
    plan = [
        ("task-servers", (1.0, 2.0)),
        ("task-servers", (1.0, 8.0)),
        ("wfq", (1.0, 2.0)),
        ("sfq", (1.0, 2.0)),
        ("lottery", (1.0, 2.0)),
        ("drr", (1.0, 2.0)),
        ("strict-priority", (1.0, 2.0)),
        ("strict-priority", (1.0, 8.0)),
    ]

    def run_all(config):
        return [run_variant(config, name, deltas) for name, deltas in plan]

    rows = benchmark.pedantic(run_all, args=(bench_config,), rounds=1, iterations=1)
    print()
    print(
        render_table(
            (
                "realisation",
                "deltas",
                "target_ratio",
                "achieved_ratio",
                "class1_slowdown",
                "class2_slowdown",
            ),
            rows,
        )
    )

    def row_for(name, deltas):
        return next(r for r in rows if r["realisation"] == name and r["deltas"] == deltas)

    # The idealised task servers and strict priority differentiate in the
    # right direction.
    assert row_for("task-servers", (1.0, 2.0))["achieved_ratio"] > 1.0
    assert row_for("strict-priority", (1.0, 2.0))["achieved_ratio"] > 1.0

    # The packetised realisations on a single non-preemptive processor keep
    # the ordering *on average* but deliver visibly weaker differentiation
    # than the idealised fluid task servers: the shared busy period couples
    # the classes, and serving always happens at full speed.  Individual
    # schedulers can dip close to 1 at bench scale, so the assertion is on
    # the group mean and a loose per-scheduler band.
    packetised = [
        row_for(name, (1.0, 2.0))["achieved_ratio"] for name in ("wfq", "sfq", "lottery", "drr")
    ]
    assert all(0.6 < r < 6.0 for r in packetised)
    assert sum(packetised) / len(packetised) > 0.95
    assert row_for("task-servers", (1.0, 2.0))["achieved_ratio"] > min(packetised)

    # Controllability: the PSD task-server model moves its achieved ratio
    # substantially when the target moves from 2 to 8 ...
    psd_2 = row_for("task-servers", (1.0, 2.0))["achieved_ratio"]
    psd_8 = row_for("task-servers", (1.0, 8.0))["achieved_ratio"]
    assert psd_8 > 1.5 * psd_2

    # ... while strict priority ignores the differentiation parameters: its
    # spacing is dictated by the load split, so the two targets produce
    # essentially the same achieved ratio.
    sp_2 = row_for("strict-priority", (1.0, 2.0))["achieved_ratio"]
    sp_8 = row_for("strict-priority", (1.0, 8.0))["achieved_ratio"]
    assert sp_8 < 2.0 * sp_2
