"""Heterogeneous cluster: capacity-aware vs capacity-blind at load 0.9.

Paper extension: the PSD feedback loop over a fleet whose nodes differ in
speed.  A two-node 2:1 capacity mix (same total capacity as the paper's
single server) serves the two-class workload at system load 0.9 under the
feedback controller, and the bench contrasts three configurations:

* the single-server baseline (the paper's model, common random numbers);
* **capacity-aware**: ``weighted_jsq`` dispatch + ``CapacityProportional``
  rate partitioning — requests and rates both arrive in proportion to node
  speed, so each node is a capacity-scaled replica of the single server and
  the achieved slowdown ratio stays within the fig. 2 tolerance band;
* **capacity-blind**: ``round_robin`` + ``EqualSplit`` on the *same* fleet —
  the slow node is handed more rate than it can physically serve and half
  the requests, so it overloads and the achieved slowdowns/tails visibly
  degrade.

A final check pins the compatibility contract: explicit homogeneous
capacities reproduce the capacity-less cluster bit for bit.
"""

import numpy as np
import pytest

from repro.cluster import make_cluster, resolve_capacities
from repro.core import PsdSpec
from repro.experiments import ClusterScalingBuild, ExperimentConfig
from repro.simulation import MeasurementConfig, ReplicationRunner, Scenario

NUM_NODES = 2
MIX = "2:1"
LOAD = 0.9

#: (label, dispatch policy, partitioner-registry name, capacity mix).
CELLS = (
    ("aware", "weighted_jsq", "capacity", MIX),
    ("blind", "round_robin", "equal", MIX),
)

#: Same trimmed protocol as the cluster-dispatch bench: enough horizon for
#: the feedback loop to settle, replication-averaged ratios for assertions.
CONFIG = ExperimentConfig(
    measurement=MeasurementConfig(
        warmup=3_000.0, horizon=20_000.0, window=1_000.0, replications=4
    ),
    load_grid=(LOAD,),
    name="cluster-hetero-bench",
)


def _replicate(build):
    runner = ReplicationRunner(
        replications=CONFIG.measurement.replications,
        base_seed=np.random.SeedSequence(entropy=CONFIG.base_seed),
        workers=1,
    )
    return runner.run(build)


def _pooled_p95(summary) -> float:
    slowdowns = np.concatenate(
        [
            np.asarray([r.slowdown for r in result.measured_records()], dtype=float)
            for result in summary.results
        ]
    )
    return float(np.percentile(slowdowns, 95))


@pytest.mark.benchmark(group="cluster")
def test_cluster_heterogeneous_capacity_awareness(benchmark):
    spec = PsdSpec.of(1, 2)
    classes = CONFIG.classes_for_load(LOAD, spec.deltas)
    scaled = CONFIG.scaled_measurement()

    def sweep():
        baseline = _replicate(
            ClusterScalingBuild(
                classes, scaled, spec, dispatch_entropy=CONFIG.base_seed
            )
        )
        cells = {}
        for label, policy, partitioner, mix in CELLS:
            cells[label] = _replicate(
                ClusterScalingBuild(
                    classes,
                    scaled,
                    spec,
                    num_nodes=NUM_NODES,
                    policy=policy,
                    dispatch_entropy=CONFIG.base_seed,
                    capacities=resolve_capacities(mix, NUM_NODES),
                    partitioner=partitioner,
                )
            )
        return baseline, cells

    baseline, cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base_ratio = baseline.ratio_of_mean_slowdowns[1]
    print()
    print(
        f"  single server: ratio {base_ratio:.2f}, "
        f"system {baseline.system_slowdown.mean:.1f}, p95 {_pooled_p95(baseline):.1f}"
    )
    stats = {}
    for label, summary in cells.items():
        ratio = summary.ratio_of_mean_slowdowns[1]
        system = summary.system_slowdown.mean
        p95 = _pooled_p95(summary)
        stats[label] = (ratio, system, p95)
        print(
            f"  {label:<6} ({MIX} mix)   ratio={ratio:.2f} "
            f"system={system:.1f} p95={p95:.1f}"
        )
        benchmark.extra_info[f"hetero_{label}_ratio"] = round(ratio, 3)
        benchmark.extra_info[f"hetero_{label}_system_slowdown"] = round(system, 2)
        benchmark.extra_info[f"hetero_{label}_p95"] = round(p95, 1)
    benchmark.extra_info["single_server_ratio"] = round(base_ratio, 3)

    aware_ratio, aware_system, aware_p95 = stats["aware"]
    blind_ratio, blind_system, blind_p95 = stats["blind"]

    # Capacity-aware dispatch+partitioning holds the differentiation target
    # within the same band the fig. 2 effectiveness bench asserts for the
    # single server, and tracks the baseline under common random numbers.
    assert 1.2 < aware_ratio < 3.2, aware_ratio
    assert 0.5 < aware_ratio / base_ratio < 1.6, (aware_ratio, base_ratio)

    # Capacity-blind EqualSplit on the same fleet visibly misses: the slow
    # node (one third of the fleet's speed, handed half the rate and half
    # the requests) runs at local load ~1.35, so its queue diverges over the
    # horizon and both the absolute slowdowns and the tail blow up.
    assert blind_system > 2.0 * aware_system, (blind_system, aware_system)
    assert blind_p95 > 2.0 * aware_p95, (blind_p95, aware_p95)
    # ... and the achieved ratio drifts further from the target of 2 than
    # the capacity-aware configuration's.
    assert abs(blind_ratio - 2.0) > abs(aware_ratio - 2.0), (blind_ratio, aware_ratio)


@pytest.mark.benchmark(group="cluster")
def test_homogeneous_capacities_bit_identical(benchmark):
    """Explicit uniform capacities must not perturb a single bit.

    One replication of the 2-node round-robin cluster, with and without
    ``capacities=(1.0, 1.0)``: dispatch decisions, rate history and
    per-class slowdowns must be *equal*, not approximately equal — the
    capacity machinery reduces to the capacity-blind arithmetic on a
    homogeneous fleet.
    """
    spec = PsdSpec.of(1, 2)
    classes = CONFIG.classes_for_load(LOAD, spec.deltas)
    scaled = CONFIG.scaled_measurement()

    def run(capacities):
        server = make_cluster(NUM_NODES, "round_robin", capacities=capacities, record_dispatch=True)
        result = Scenario(classes, scaled, server=server, spec=spec, seed=CONFIG.base_seed).run()
        return server, result

    def both():
        return run(None), run((1.0, 1.0))

    (bare_server, bare), (cap_server, capped) = benchmark.pedantic(both, rounds=1, iterations=1)
    assert cap_server.dispatch_log == bare_server.dispatch_log
    assert capped.per_class_mean_slowdowns() == bare.per_class_mean_slowdowns()
    assert capped.rate_history == bare.rate_history
    assert capped.generated_counts == bare.generated_counts
