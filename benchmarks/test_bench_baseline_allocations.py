"""Comparison bench: PSD rate allocation vs the baseline allocations.

For the same two-class workload (deltas (1, 4), 70% load) the bench compares
the slowdown ratios achieved by:

* the PSD allocation of Eq. 17 (the paper's contribution),
* the rate-based proportional *delay* allocation (PDD, the related work the
  introduction argues is insufficient for slowdown differentiation),
* a demand-proportional (GPS fair-share) split,
* an equal split.

Analytic predictions (via Theorem 1) and simulation are both reported.  The
expected shape: only the PSD allocation hits the slowdown target; PDD lands
away from it; demand-proportional gives no differentiation at all.
"""

import math

import pytest

from repro.core import (
    PsdSpec,
    allocate_pdd_rates,
    allocate_rates,
    demand_proportional_split,
    equal_split,
)
from repro.experiments import render_table
from repro.queueing import theorem1_task_server_slowdown
from repro.simulation import PsdServerSimulation, StaticRateController, run_replications

LOAD = 0.7
DELTAS = (1.0, 4.0)


def analytic_ratio(classes, rates):
    slowdowns = [
        theorem1_task_server_slowdown(c.arrival_rate, c.service, r)
        for c, r in zip(classes, rates)
    ]
    return slowdowns[1] / slowdowns[0]


def simulate_ratio(bench_config, classes, rates, seed):
    measurement = bench_config.scaled_measurement()

    def build(_, seed_seq):
        return PsdServerSimulation(
            classes, measurement, controller=StaticRateController(rates), seed=seed_seq
        ).run()

    summary = run_replications(
        build, replications=bench_config.measurement.replications, base_seed=seed
    )
    return summary.ratio_of_mean_slowdowns[1]


@pytest.mark.benchmark(group="ablations")
def test_baseline_allocations(benchmark, bench_config):
    spec = PsdSpec(DELTAS)
    classes = bench_config.classes_for_load(LOAD, DELTAS)

    def run_all(config):
        allocations = {
            "psd (eq. 17)": allocate_rates(classes, spec).rates,
            "pdd (delay-proportional)": allocate_pdd_rates(classes, spec).rates,
            "demand-proportional": demand_proportional_split(classes),
            "equal-split": equal_split(classes),
        }
        rows = []
        for seed, (name, rates) in enumerate(allocations.items(), start=41):
            rows.append(
                {
                    "allocation": name,
                    "rate_1": rates[0],
                    "rate_2": rates[1],
                    "analytic_ratio": analytic_ratio(classes, rates),
                    "simulated_ratio": simulate_ratio(config, classes, rates, seed),
                    "target_ratio": DELTAS[1] / DELTAS[0],
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, args=(bench_config,), rounds=1, iterations=1)
    print()
    print(
        render_table(
            (
                "allocation",
                "rate_1",
                "rate_2",
                "analytic_ratio",
                "simulated_ratio",
                "target_ratio",
            ),
            rows,
        )
    )

    by_name = {row["allocation"]: row for row in rows}
    target = DELTAS[1] / DELTAS[0]

    # Only the PSD allocation hits the slowdown target analytically.
    assert by_name["psd (eq. 17)"]["analytic_ratio"] == pytest.approx(target, rel=1e-9)
    assert abs(by_name["pdd (delay-proportional)"]["analytic_ratio"] - target) > 0.2
    assert by_name["demand-proportional"]["analytic_ratio"] == pytest.approx(1.0, rel=1e-9)

    # Simulation agrees with the ranking: PSD is closest to the target.
    # Ratios are compared on the log scale — heavy-tailed noise makes the
    # PSD ratio overshoot multiplicatively (e.g. 7.5 against a target of 4),
    # and on the absolute scale such an overshoot can spuriously look worse
    # than demand-proportional's structural failure to differentiate at all
    # (ratio pinned near 1 regardless of the target).
    psd_error = abs(math.log(by_name["psd (eq. 17)"]["simulated_ratio"] / target))
    demand_error = abs(math.log(by_name["demand-proportional"]["simulated_ratio"] / target))
    assert psd_error < demand_error

    # The equal split leaves both task servers stable here (load 0.35 < 0.5
    # each) and gives a ratio far from the target as well.
    assert abs(by_name["equal-split"]["analytic_ratio"] - target) > 0.5
