"""Figure 6: percentiles of windowed slowdown ratios, three classes.

Targets: class 2 / class 1 = 2 and class 3 / class 1 = 3.
"""

import numpy as np
import pytest

from repro.experiments import figure6

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig06_ratio_percentiles_three_classes(benchmark, bench_config):
    result = run_and_report(benchmark, figure6, bench_config)

    # Two ratio pairs per load.
    assert len(result.rows) == 2 * len(bench_config.load_grid)
    pairs = {row["ratio_pair"] for row in result.rows}
    assert pairs == {"class2/class1", "class3/class1"}

    for row in result.rows:
        assert row["p5"] <= row["median"] <= row["p95"]
        assert row["windows"] > 0

    # Median ratios track their targets on average across the sweep.
    for pair, target in (("class2/class1", 2.0), ("class3/class1", 3.0)):
        medians = [r["median"] for r in result.rows if r["ratio_pair"] == pair]
        assert np.mean(medians) == pytest.approx(target, rel=0.5)

    # The class-3 ratio sits above the class-2 ratio at most loads.
    by_load = {}
    for row in result.rows:
        by_load.setdefault(row["load"], {})[row["ratio_pair"]] = row["median"]
    ordered = [
        entries["class3/class1"] > entries["class2/class1"]
        for entries in by_load.values()
        if len(entries) == 2
    ]
    assert sum(ordered) >= len(ordered) - 1
