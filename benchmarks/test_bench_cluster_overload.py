"""Overload survival: quota-reserve admission vs an admission-blind cluster.

Paper extension: the PSD feedback loop has no answer to sustained offered
load past capacity — a scheduler differentiates the backlog, it cannot make
the backlog finite.  A two-node 2:1 capacity mix (same total capacity as the
paper's single server) is offered the two-class workload at system load 1.2
under ``weighted_jsq`` dispatch + ``CapacityProportional`` partitioning, and
the bench contrasts two ways of living through the overload:

* **quota-aware**: the :class:`~repro.cluster.AdmissionController` budgets
  each estimation window from the fleet's live capacity, reserves a quota
  share per class, and sheds the excess.  The *admitted* traffic's
  class-2/class-1 slowdown ratio stays inside the fig. 2 band, the shed
  fraction stays below 25%, and the cluster finishes what it admits.
* **admission-blind**: the same offered load hits the bare cluster.  Queues
  grow with the horizon instead of converging: an order of magnitude more
  unfinished requests and a far larger system slowdown.

A second test pins the hot-path contract that makes admission affordable:
with the quota controller in front, the batched dispatch pipeline and the
per-event path must produce *bit-identical* ledgers (every column, including
the new disposition column), dispatch logs and shed/degrade counters.
"""

import numpy as np
import pytest

from repro.cluster import resolve_capacities
from repro.core import PsdSpec
from repro.experiments import ClusterScalingBuild, ExperimentConfig
from repro.simulation import MeasurementConfig, ReplicationRunner

NUM_NODES = 2
MIX = "2:1"
#: Offered system load: 20% past the fleet's total capacity.
LOAD = 1.2
#: Quota-controller arguments for the defended cell: 45% reserve per class,
#: a 10% shared overflow pool, and a budget targeting 95% utilisation.
ADMISSION = "quota"
ADMISSION_ARGS = ("quota_shares=0.45,0.45", "target_utilisation=0.95")

#: Moderate-tail workload (upper bound 10): pooled mean slowdowns converge
#: within the horizon, keeping the band assertions tight.
CONFIG = ExperimentConfig(
    measurement=MeasurementConfig(
        warmup=2_000.0, horizon=14_000.0, window=500.0, replications=4
    ),
    load_grid=(0.9,),  # unused: the overload classes are built explicitly
    upper_bound=10.0,
    name="cluster-overload-bench",
)


def _replicate(build):
    runner = ReplicationRunner(
        replications=CONFIG.measurement.replications,
        base_seed=np.random.SeedSequence(entropy=CONFIG.base_seed),
        workers=1,
    )
    return runner.run(build)


def _admitted_ratio(summary) -> float:
    """Class-2/class-1 ratio of pooled mean slowdowns over every completion
    (admitted traffic only — shed requests never enter service)."""
    sums, counts = np.zeros(2), np.zeros(2)
    for result in summary.results:
        ledger = result.ledger
        ids = ledger.completed_ids
        classes = ledger.class_index[ids]
        sums += np.bincount(classes, weights=ledger.slowdowns(ids), minlength=2)
        counts += np.bincount(classes, minlength=2)
    means = sums / counts
    return float(means[1] / means[0])


def _generated(summary) -> int:
    return sum(sum(r.generated_counts) for r in summary.results)


def _shed_fraction(summary) -> float:
    shed = sum(sum(r.rejected_counts) for r in summary.results)
    return shed / _generated(summary)


def _unfinished(summary) -> int:
    """Requests admitted but never completed, summed over replications."""
    return sum(
        sum(r.generated_counts) - sum(r.completed_counts) - sum(r.rejected_counts)
        for r in summary.results
    )


def _build(admission, admission_args, *, batched=None, record_dispatch=False):
    spec = PsdSpec.of(1, 2)
    classes = CONFIG.classes_for_load(LOAD, spec.deltas, allow_overload=True)
    return ClusterScalingBuild(
        classes,
        CONFIG.scaled_measurement(),
        spec,
        num_nodes=NUM_NODES,
        policy="weighted_jsq",
        dispatch_entropy=CONFIG.base_seed,
        capacities=resolve_capacities(MIX, NUM_NODES),
        partitioner="capacity",
        batched=batched,
        record_dispatch=record_dispatch,
        admission=admission,
        admission_args=admission_args,
    )


@pytest.mark.benchmark(group="cluster")
def test_cluster_overload_quota_vs_blind(benchmark):
    def sweep():
        aware = _replicate(_build(ADMISSION, ADMISSION_ARGS))
        blind = _replicate(_build(None, ()))
        return aware, blind

    aware, blind = benchmark.pedantic(sweep, rounds=1, iterations=1)

    aware_ratio = _admitted_ratio(aware)
    blind_ratio = _admitted_ratio(blind)
    shed = _shed_fraction(aware)
    aware_unfinished = _unfinished(aware)
    blind_unfinished = _unfinished(blind)
    aware_system = aware.system_slowdown.mean
    blind_system = blind.system_slowdown.mean

    print()
    print(
        f"  aware ratio={aware_ratio:.2f} shed={shed:.3f} "
        f"system={aware_system:.1f} unfinished={aware_unfinished}"
    )
    print(
        f"  blind ratio={blind_ratio:.2f} shed=0.000 "
        f"system={blind_system:.1f} unfinished={blind_unfinished}"
    )
    benchmark.extra_info["overload_aware_ratio"] = round(aware_ratio, 3)
    benchmark.extra_info["overload_aware_shed_fraction"] = round(shed, 4)
    benchmark.extra_info["overload_aware_system_slowdown"] = round(aware_system, 2)
    benchmark.extra_info["overload_aware_unfinished"] = aware_unfinished
    benchmark.extra_info["overload_blind_ratio"] = round(blind_ratio, 3)
    benchmark.extra_info["overload_blind_system_slowdown"] = round(blind_system, 2)
    benchmark.extra_info["overload_blind_unfinished"] = blind_unfinished

    # The quota-aware cluster keeps serving the paper's differentiation for
    # the traffic it admits: the achieved ratio stays inside the fig. 2 band.
    assert 1.4 < aware_ratio < 2.8, aware_ratio
    # ... and it buys that by shedding only the capacity excess: offered
    # load 1.2 against a 0.95-utilisation budget needs ~21% shed.
    assert shed < 0.25, shed
    assert shed > 0.05, shed
    # Aware runs finish what they admit (end-of-horizon stragglers only).
    assert aware_unfinished < 0.02 * _generated(aware), aware_unfinished
    # The admission-blind cluster stalls: the backlog grows with the horizon,
    # leaving an order of magnitude more unfinished work and a far larger
    # system slowdown.
    assert blind_unfinished >= 10 * max(aware_unfinished, 1), (
        blind_unfinished,
        aware_unfinished,
    )
    assert blind_system > 3.0 * aware_system, (blind_system, aware_system)


@pytest.mark.benchmark(group="cluster")
def test_overload_admission_batched_bit_identical(benchmark):
    """Admission on the batched hot path must not perturb a single bit.

    The same quota-defended overloaded cell, batched pipeline vs the
    per-event path: every ledger column (including disposition), the
    dispatch log, the completion set and the shed/degrade counters must be
    *equal*, not approximately equal — the vectorised block decisions
    replay the scalar ladder exactly.
    """

    def both():
        batched = _replicate(_build(ADMISSION, ADMISSION_ARGS, batched=True, record_dispatch=True))
        scalar = _replicate(_build(ADMISSION, ADMISSION_ARGS, batched=False, record_dispatch=True))
        return batched, scalar

    batched, scalar = benchmark.pedantic(both, rounds=1, iterations=1)

    for batched_result, scalar_result in zip(batched.results, scalar.results):
        b, s = batched_result.ledger, scalar_result.ledger
        assert len(b) == len(s)
        assert np.array_equal(b.class_index, s.class_index)
        assert np.array_equal(b.arrival_time, s.arrival_time)
        assert np.array_equal(b.size, s.size)
        # Shed (and end-of-horizon unfinished) rows never start service, so
        # these columns carry NaN — equal_nan keeps the comparison exact.
        assert np.array_equal(b.service_start_time, s.service_start_time, equal_nan=True)
        assert np.array_equal(b.completion_time, s.completion_time, equal_nan=True)
        assert np.array_equal(b.disposition, s.disposition)
        assert batched_result.dispatch_log == scalar_result.dispatch_log
        assert batched_result.rejected_counts == scalar_result.rejected_counts
        assert batched_result.degraded_counts == scalar_result.degraded_counts
        assert batched_result.generated_counts == scalar_result.generated_counts
        assert batched_result.per_class_mean_slowdowns() == (
            scalar_result.per_class_mean_slowdowns()
        )
    assert batched.per_class_slowdowns == scalar.per_class_slowdowns
    assert batched.system_slowdown == scalar.system_slowdown
