"""Figure 11: influence of the Bounded Pareto shape parameter.

Shape parameter swept over [1.0, 2.0] with two classes (deltas 1, 2) at a
fixed load.  The paper's claims: the slowdowns decrease as alpha grows, and
the simulated-vs-expected agreement does not depend on alpha.
"""

import numpy as np
import pytest

from repro.experiments import figure11

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig11_shape_parameter(benchmark, bench_config):
    result = run_and_report(benchmark, figure11, bench_config)

    alphas = result.column("alpha")
    expected_1 = result.column("expected_1")
    expected_2 = result.column("expected_2")
    simulated_1 = result.column("simulated_1")
    second_moments = result.column("second_moment")

    assert alphas == sorted(alphas)
    # Analytic slowdowns and E[X^2] are strictly decreasing in alpha.
    assert expected_1 == sorted(expected_1, reverse=True)
    assert expected_2 == sorted(expected_2, reverse=True)
    assert second_moments == sorted(second_moments, reverse=True)

    # The simulated curve follows the same downward trend end-to-end.
    assert simulated_1[0] > simulated_1[-1]

    # No systematic dependence of the error on alpha: the relative error at
    # the burstiest setting is not categorically worse than at the smoothest
    # (within an order of magnitude at bench scale).
    errors = result.column("worst_rel_error")
    assert np.isfinite(errors).all()
    low_alpha_error = np.mean(errors[: len(errors) // 2])
    high_alpha_error = np.mean(errors[len(errors) // 2 :])
    assert low_alpha_error < 10 * (high_alpha_error + 0.05)
    assert high_alpha_error < 10 * (low_alpha_error + 0.05)
