"""Figure 10: achieved slowdown ratios of three classes, targets 2 and 3.

The paper reports that the three-class ratios have larger variance than the
two-class ones (an estimation error in any class perturbs every rate), but
the targets are still achieved on average.
"""

import numpy as np
import pytest

from repro.experiments import figure10

from conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig10_controllability_three_classes(benchmark, bench_config):
    result = run_and_report(benchmark, figure10, bench_config)

    assert len(result.rows) == 2 * len(bench_config.load_grid)

    def rows_for(pair):
        return [r for r in result.rows if r["ratio_pair"] == pair]

    mean_2 = np.mean([r["achieved_ratio"] for r in rows_for("class2/class1")])
    mean_3 = np.mean([r["achieved_ratio"] for r in rows_for("class3/class1")])

    # Targets achieved on average, and ordered: class 3 gets the larger ratio.
    assert mean_2 == pytest.approx(2.0, rel=0.5)
    assert mean_3 == pytest.approx(3.0, rel=0.5)
    assert mean_3 > mean_2

    # Every row carries a finite relative error; the paper's variance claim
    # (three-class ratios are noisier than two-class ones) is recorded in the
    # driver notes and quantified in EXPERIMENTS.md rather than asserted here,
    # since a single bench run of each cannot separate the two noise levels.
    three_class_errors = [r["rel_error"] for r in rows_for("class2/class1")]
    assert all(np.isfinite(e) for e in three_class_errors)
