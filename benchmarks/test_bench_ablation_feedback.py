"""Ablation: open-loop Eq. 17 control vs measured-slowdown feedback.

The paper's future work asks for better *short-timescale* predictability:
the open-loop controller only reacts to load estimates, so windowed slowdown
ratios wander around the target (Figs. 5-8).  The
:class:`repro.core.FeedbackPsdController` extension additionally feeds the
measured per-window slowdowns back into the allocation.  This bench compares
the two controllers on the same workload (two classes, target ratio 2, 70%
load) and reports the distribution of per-window achieved ratios.
"""

import numpy as np
import pytest

from repro.core import FeedbackPsdController, PsdController, PsdSpec
from repro.experiments import render_table
from repro.metrics import percentile_band
from repro.simulation import PsdServerSimulation, run_replications

LOAD = 0.7
DELTAS = (1.0, 2.0)


def run_controller(bench_config, kind, *, seed=77):
    spec = PsdSpec(DELTAS)
    classes = bench_config.classes_for_load(LOAD, DELTAS)
    measurement = bench_config.scaled_measurement()

    def make_controller():
        if kind == "open-loop":
            return PsdController(classes, spec)
        if kind == "feedback":
            return FeedbackPsdController(classes, spec, gain=0.4, max_correction=3.0)
        raise ValueError(kind)

    def build(_, seed_seq):
        return PsdServerSimulation(
            classes, measurement, controller=make_controller(), seed=seed_seq
        ).run()

    summary = run_replications(
        build, replications=bench_config.measurement.replications, base_seed=seed
    )
    ratios = np.concatenate(
        [r.monitor.ratio_series(1, 0) for r in summary.results if r.monitor.ratio_series(1, 0).size]
    )
    band = percentile_band(ratios)
    return {
        "controller": kind,
        "mean_ratio_of_means": summary.ratio_of_mean_slowdowns[1],
        "window_ratio_p5": band.p5,
        "window_ratio_median": band.median,
        "window_ratio_p95": band.p95,
        "window_ratio_spread": band.spread,
        "target": DELTAS[1] / DELTAS[0],
    }


@pytest.mark.benchmark(group="ablations")
def test_ablation_feedback_controller(benchmark, bench_config):
    def run_all(config):
        return [run_controller(config, "open-loop"), run_controller(config, "feedback")]

    rows = benchmark.pedantic(run_all, args=(bench_config,), rounds=1, iterations=1)
    print()
    print(
        render_table(
            (
                "controller",
                "mean_ratio_of_means",
                "window_ratio_p5",
                "window_ratio_median",
                "window_ratio_p95",
                "window_ratio_spread",
                "target",
            ),
            rows,
        )
    )

    by_kind = {row["controller"]: row for row in rows}
    target = DELTAS[1] / DELTAS[0]

    # Both controllers keep the long-run ratio in a sensible band around the
    # target and the median windowed ratio above 1 (ordering preserved).
    for row in rows:
        assert 0.5 * target < row["mean_ratio_of_means"] < 2.5 * target
        assert row["window_ratio_median"] > 1.0

    # The feedback controller must not make the short-timescale spread
    # dramatically worse than the open-loop controller (the intent is to
    # shrink it; at bench scale we assert it stays within 1.5x).
    assert (
        by_kind["feedback"]["window_ratio_spread"]
        < 1.5 * by_kind["open-loop"]["window_ratio_spread"] + 1.0
    )
