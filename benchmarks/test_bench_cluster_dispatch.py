"""Cluster dispatch policies at moderate and high load (paper extension).

Not tied to a paper figure: the cluster subsystem dispatches the paper's
workload across four homogeneous nodes and the bench compares every bundled
dispatch policy at system loads 0.5 and 0.9, under the same feedback
controller the ``cluster`` experiment uses.  The assertions pin down the
qualitative claims the subsystem makes:

* differentiation survives clustering — per-class slowdown ratios stay
  within the same tolerance band the single-server effectiveness bench
  (fig. 2) asserts, for every policy;
* backlog-aware dispatch pays — join-shortest-queue beats weighted-random
  on the p95 request slowdown at load 0.9 (queue pooling shrinks the tail).
"""

import numpy as np
import pytest

from repro.core import PsdSpec
from repro.experiments import ClusterScalingBuild, ExperimentConfig
from repro.simulation import MeasurementConfig, ReplicationRunner

NUM_NODES = 4
POLICIES = ("round_robin", "weighted_random", "jsq", "least_work", "affinity")

#: A trimmed protocol: half the figure-bench horizon over two loads keeps the
#: whole sweep (2 loads x (1 baseline + 5 policies) cells) near one figure
#: bench's cost; replication-averaged ratios are what the assertions use.
CONFIG = ExperimentConfig(
    measurement=MeasurementConfig(
        warmup=3_000.0, horizon=20_000.0, window=1_000.0, replications=4
    ),
    load_grid=(0.5, 0.9),
    name="cluster-bench",
)


def _replicate(build):
    runner = ReplicationRunner(
        replications=CONFIG.measurement.replications,
        base_seed=np.random.SeedSequence(entropy=CONFIG.base_seed),
        workers=1,
    )
    return runner.run(build)


def _pooled_p95(summary) -> float:
    slowdowns = np.concatenate(
        [
            np.asarray([r.slowdown for r in result.measured_records()], dtype=float)
            for result in summary.results
        ]
    )
    return float(np.percentile(slowdowns, 95))


@pytest.mark.benchmark(group="cluster")
def test_cluster_dispatch_policies(benchmark):
    spec = PsdSpec.of(1, 2)

    def sweep():
        data = {}
        for load in CONFIG.load_grid:
            classes = CONFIG.classes_for_load(load, spec.deltas)
            scaled = CONFIG.scaled_measurement()
            baseline = _replicate(
                ClusterScalingBuild(
                    classes, scaled, spec, dispatch_entropy=CONFIG.base_seed
                )
            )
            cells = {}
            for policy in POLICIES:
                summary = _replicate(
                    ClusterScalingBuild(
                        classes,
                        scaled,
                        spec,
                        num_nodes=NUM_NODES,
                        policy=policy,
                        dispatch_entropy=CONFIG.base_seed,
                    )
                )
                cells[policy] = summary
            data[load] = (baseline, cells)
        return data

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    for load, (baseline, cells) in data.items():
        base_ratio = baseline.ratio_of_mean_slowdowns[1]
        print(
            f"  load {load}: single-server ratio {base_ratio:.2f}, "
            f"p95 {_pooled_p95(baseline):.1f}"
        )
        for policy, summary in cells.items():
            ratio = summary.ratio_of_mean_slowdowns[1]
            print(
                f"    {policy:<16} slowdowns="
                f"({summary.mean_slowdowns[0]:.2f}, {summary.mean_slowdowns[1]:.2f}) "
                f"ratio={ratio:.2f} p95={_pooled_p95(summary):.1f}"
            )

    for load, (baseline, cells) in data.items():
        ratios = [cells[p].ratio_of_mean_slowdowns[1] for p in POLICIES]
        # Same spacing tolerance the fig. 2 effectiveness bench asserts for
        # the single server: class 2 slower in the (large) majority of
        # cells, average spacing near the target of 2.
        assert sum(r > 1.0 for r in ratios) >= len(ratios) - 1, (load, ratios)
        assert 1.2 < sum(ratios) / len(ratios) < 3.2, (load, ratios)

        # Fidelity to the single-server baseline under common random
        # numbers, again with fig. 2's two-level agreement band.
        base_ratio = baseline.ratio_of_mean_slowdowns[1]
        agreement = [r / base_ratio for r in ratios]
        assert 0.5 < sum(agreement) / len(agreement) < 1.6, (load, agreement)
        assert all(0.2 < a < 3.5 for a in agreement), (load, agreement)

    # Queue pooling: JSQ's tail beats random dispatch under heavy load.
    _, high_cells = data[0.9]
    assert _pooled_p95(high_cells["jsq"]) <= _pooled_p95(high_cells["weighted_random"])
