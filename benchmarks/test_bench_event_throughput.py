"""Event-throughput microbench: the columnar ledger vs the seed object path.

The ledger refactor replaced object-per-request bookkeeping (a ``Request``
dataclass per arrival, a ``RequestRecord`` + monitor bucket append + trace
append + Python window sums per completion) with struct-of-arrays columns
addressed by integer id.  This bench quantifies that win on the
effectiveness scenario (two classes of the paper's Bounded Pareto workload
under the adaptive controller, the workload behind Figs. 2-4): it runs the
same simulation through the current columnar pipeline and through a
*retained object-path baseline* — a :class:`Scenario` subclass that
re-enacts, request by request, every allocation and bookkeeping step the
seed performed, using the object APIs the refactor kept (``ledger.view``,
``RequestRecord``, streaming ``WindowedMonitor.record``, appendable
``SimulationTrace``).

Since the batched-hot-path change a third contender joins: the *batched*
pipeline (block arrivals + bulk completion drains, now the default for
capable servers) runs the same simulation without one engine event per
request.  All paths simulate the identical event sequence (same seed, same
ledger underneath), so the requests/sec ratios isolate pure bookkeeping
overhead.  The hard assertions — per-event ledger at least 1.5x the object
path, batched at least 3x the committed per-event baseline and bit-identical
to per-event — are checked on the best of three interleaved runs per path,
which suppresses the CPU-contention noise of shared runners.  The absolute
and relative numbers land in ``benchmark.extra_info`` and therefore in the
``--benchmark-json`` artifact the CI job uploads.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core import AdmissionDecision, PsdSpec
from repro.simulation import (
    MeasurementConfig,
    Scenario,
    SimulationTrace,
    WindowedMonitor,
)
from repro.workload import web_classes

#: The ledger path must sustain at least this multiple of the object-path
#: baseline's requests/sec (acceptance bar of the ledger refactor).
MIN_SPEEDUP = 1.5

#: The per-event ledger path's requests/sec as committed in
#: BENCH_BASELINE.json when the batched path landed — the fixed yardstick
#: for the batched acceptance bar below.
COMMITTED_PER_EVENT_RPS = 65_840.1

#: The batched path must sustain at least this multiple of
#: :data:`COMMITTED_PER_EVENT_RPS` (acceptance bar of the batched hot path).
MIN_BATCHED_SPEEDUP = 3.0

#: Noise guard: the batched path must also beat the per-event path measured
#: in the same process by this factor (robust to machine differences).
MIN_BATCHED_RELATIVE = 2.5

#: Interleaved timing runs per path; the best of each is compared.
ROUNDS = 3


@dataclass
class _SeedRequest:
    """The seed's per-request object, retained for the baseline's arrivals."""

    request_id: int
    class_index: int
    arrival_time: float
    size: float
    service_start_time: float = math.nan
    completion_time: float = math.nan


class ObjectPathScenario(Scenario):
    """The seed's object-per-request bookkeeping, re-enacted step by step.

    Per arrival: one request object, per-class generated/window counters.
    Per completion: a ``Request`` view, a ``RequestRecord``, a trace append,
    a streaming monitor record, Python window slowdown sums and completion
    counters.  The simulated event sequence is untouched (the same ledger
    drives the servers), so only the bookkeeping cost differs.
    """

    def __init__(self, *args, **kwargs):
        # The object path re-enacts per-request hooks (`_make_arrival`,
        # `_on_completion`); the batched path never calls them, so this
        # scenario must stay on the per-event path regardless of defaults.
        kwargs["batched"] = False
        super().__init__(*args, **kwargs)
        n = len(self.classes)
        self._object_trace = SimulationTrace(n)
        self._object_monitor = WindowedMonitor(
            n, warmup=self.config.warmup, window=self.config.window
        )
        self._object_window_sums = [0.0] * n
        self._object_window_counts = [0] * n
        self._object_window_arrivals = [0] * n
        self._object_window_work = [0.0] * n
        self._object_generated = [0] * n
        self._object_completed = [0] * n
        self._object_live: dict[int, _SeedRequest] = {}
        self._object_counter = 0

    def _make_arrival(self, class_index: int):
        ledger, server, engine = self.ledger, self.server, self.engine

        def handle() -> None:
            source = self.sources[class_index]
            size = source.next_size()
            self._object_generated[class_index] += 1
            decision = (
                AdmissionDecision.ACCEPT
                if self.admission is None
                else self.admission.decide(class_index, size, self._system_snapshot())
            )
            if decision is not AdmissionDecision.SHED:
                request = _SeedRequest(self._object_counter, class_index, engine.now, size)
                self._object_counter += 1
                self._object_window_arrivals[class_index] += 1
                self._object_window_work[class_index] += size
                rid = ledger.append(class_index, engine.now, size)
                self._object_live[rid] = request
                server.submit(rid)
            else:
                self._rejected[class_index] += 1
            gap = source.next_interarrival()
            if np.isfinite(gap):
                engine.schedule_after(gap, handle, label=f"arrival-{class_index}")

        return handle

    def _on_completion(self, rid: int) -> None:
        self._object_live.pop(rid, None)
        record = self._object_trace.add(self.ledger.view(rid))
        self._object_monitor.record(record)
        self._object_window_sums[record.class_index] += record.slowdown
        self._object_window_counts[record.class_index] += 1
        self._object_completed[record.class_index] += 1


def _effectiveness_point():
    classes = web_classes(2, 0.6, (1.0, 2.0))
    config = MeasurementConfig(
        warmup=1_000.0, horizon=15_000.0, window=1_000.0
    ).scaled_to_time_units(classes[0].service.mean())
    return classes, config, PsdSpec.of(1, 2)


def _timed_run(scenario_class, **kwargs):
    classes, config, spec = _effectiveness_point()
    start = time.perf_counter()
    result = scenario_class(classes, config, spec=spec, seed=1, **kwargs).run()
    elapsed = time.perf_counter() - start
    completed = sum(result.completed_counts)
    return completed / elapsed, result


@pytest.mark.benchmark(group="throughput")
def test_ledger_event_throughput_vs_object_path(benchmark):
    def measure():
        batched_rps, ledger_rps, object_rps = [], [], []
        baseline_result = None
        for _ in range(ROUNDS):  # interleaved: noise hits all paths alike
            rps, batched_result = _timed_run(Scenario)  # batched by default
            batched_rps.append(rps)
            rps, ledger_result = _timed_run(Scenario, batched=False)
            ledger_rps.append(rps)
            rps, baseline_result = _timed_run(ObjectPathScenario)
            object_rps.append(rps)
        return (
            max(batched_rps),
            max(ledger_rps),
            max(object_rps),
            batched_result,
            ledger_result,
            baseline_result,
        )

    batched_rps, ledger_rps, object_rps, batched_result, ledger_result, baseline_result = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    speedup = ledger_rps / object_rps
    batched_speedup = batched_rps / COMMITTED_PER_EVENT_RPS
    batched_relative = batched_rps / ledger_rps
    benchmark.extra_info["batched_requests_per_sec"] = round(batched_rps, 1)
    benchmark.extra_info["ledger_requests_per_sec"] = round(ledger_rps, 1)
    benchmark.extra_info["object_path_requests_per_sec"] = round(object_rps, 1)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["batched_speedup_vs_committed"] = round(batched_speedup, 3)
    benchmark.extra_info["batched_speedup_vs_per_event"] = round(batched_relative, 3)
    print()
    print(
        f"  batched: {batched_rps:,.0f} req/s  per-event ledger: {ledger_rps:,.0f} req/s  "
        f"object path: {object_rps:,.0f} req/s"
    )
    print(
        f"  ledger/object: {speedup:.2f}x  batched/per-event: {batched_relative:.2f}x  "
        f"batched/committed: {batched_speedup:.2f}x"
    )

    # Same seed, same event sequence: the paths must agree exactly on what
    # was simulated before their throughput is comparable.  Batched vs
    # per-event is the bit-identity contract of the batched hot path.
    assert batched_result.completed_counts == ledger_result.completed_counts
    assert (
        batched_result.per_class_mean_slowdowns() == ledger_result.per_class_mean_slowdowns()
    )
    assert batched_result.rate_history == ledger_result.rate_history
    np.testing.assert_array_equal(
        batched_result.ledger.completion_time, ledger_result.ledger.completion_time
    )
    assert baseline_result.completed_counts == ledger_result.completed_counts
    assert baseline_result.per_class_mean_slowdowns() == ledger_result.per_class_mean_slowdowns()
    # The baseline's own object bookkeeping saw every completion.
    assert (
        tuple(baseline_result.controller.current_rates)
        == tuple(ledger_result.controller.current_rates)
    )
    assert speedup >= MIN_SPEEDUP, (
        f"ledger path reached only {speedup:.2f}x of the retained object-path "
        f"baseline (required: {MIN_SPEEDUP}x)"
    )
    assert batched_speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched path reached only {batched_speedup:.2f}x of the committed "
        f"per-event baseline ({COMMITTED_PER_EVENT_RPS:,.0f} req/s; "
        f"required: {MIN_BATCHED_SPEEDUP}x)"
    )
    assert batched_relative >= MIN_BATCHED_RELATIVE, (
        f"batched path reached only {batched_relative:.2f}x of the per-event "
        f"path measured in this process (required: {MIN_BATCHED_RELATIVE}x)"
    )


#: The batched cluster pipeline must sustain at least this multiple of the
#: per-event cluster path measured in the same process (acceptance bar of
#: the batched *cluster* hot path; the vectorised round-robin dispatch is
#: the representative case — backlog-dependent policies replay the exact
#: scalar decision sequence and only reach parity-plus).
MIN_CLUSTER_BATCHED_SPEEDUP = 3.0


def _timed_cluster_run(batched, telemetry=None):
    from repro.cluster import make_cluster

    classes, config, spec = _effectiveness_point()
    server = make_cluster(3, "round_robin", seed=9)
    start = time.perf_counter()
    result = Scenario(
        classes,
        config,
        server=server,
        spec=spec,
        seed=1,
        batched=batched,
        telemetry=telemetry,
    ).run()
    elapsed = time.perf_counter() - start
    return sum(result.completed_counts) / elapsed, result


@pytest.mark.benchmark(group="throughput")
def test_cluster_batched_throughput(benchmark):
    """The batched cluster hot path vs per-event dispatch, same 3-node fleet.

    Block arrivals reach the cluster whole (segmented only at estimation
    windows and fleet events), round-robin picks every node with one
    vectorised ``select_block`` call, and completions drain per node in
    bulk.  The per-event path routes one engine event per request through
    ``submit``.  Both must simulate the identical run — the ledger bytes are
    compared before the speedup is.
    """

    def measure():
        batched_rps, per_event_rps = [], []
        for _ in range(ROUNDS):  # interleaved: noise hits both paths alike
            rps, batched_result = _timed_cluster_run(batched=True)
            batched_rps.append(rps)
            rps, per_event_result = _timed_cluster_run(batched=False)
            per_event_rps.append(rps)
        return max(batched_rps), max(per_event_rps), batched_result, per_event_result

    batched_rps, per_event_rps, batched_result, per_event_result = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = batched_rps / per_event_rps
    benchmark.extra_info["cluster_batched_requests_per_sec"] = round(batched_rps, 1)
    benchmark.extra_info["cluster_per_event_requests_per_sec"] = round(per_event_rps, 1)
    benchmark.extra_info["cluster_batched_speedup"] = round(speedup, 3)
    print()
    print(
        f"  cluster batched: {batched_rps:,.0f} req/s  "
        f"cluster per-event: {per_event_rps:,.0f} req/s  speedup: {speedup:.2f}x"
    )

    # Bit-identity first: the speedup only counts if the simulated run is
    # exactly the same one.
    assert batched_result.completed_counts == per_event_result.completed_counts
    assert (
        batched_result.per_class_mean_slowdowns()
        == per_event_result.per_class_mean_slowdowns()
    )
    assert batched_result.rate_history == per_event_result.rate_history
    np.testing.assert_array_equal(
        batched_result.ledger.completion_time, per_event_result.ledger.completion_time
    )
    np.testing.assert_array_equal(
        batched_result.ledger.service_start_time,
        per_event_result.ledger.service_start_time,
    )
    assert speedup >= MIN_CLUSTER_BATCHED_SPEEDUP, (
        f"batched cluster path reached only {speedup:.2f}x of the per-event "
        f"path measured in this process (required: {MIN_CLUSTER_BATCHED_SPEEDUP}x)"
    )


#: A disabled telemetry facade may cost at most this fraction of the
#: uninstrumented batched path's throughput (the telemetry layer's no-op
#: fast-path acceptance bar: one attribute check per instrumented site).
MAX_TELEMETRY_OFF_OVERHEAD = 0.02

#: Interleaved rounds for the telemetry comparison: the true overhead is a
#: fraction of a percent, far below the run-to-run noise of a shared
#: machine, so the best-of window is wider than :data:`ROUNDS` to keep the
#: tight 2% bar stable.
TELEMETRY_ROUNDS = 5


@pytest.mark.benchmark(group="throughput")
def test_telemetry_noop_fast_path_overhead(benchmark):
    """Carrying a disabled Telemetry facade must be free (< 2% throughput).

    Interleaved best-of runs of the batched pipeline with no telemetry versus
    a ``Telemetry(enabled=False)`` facade threaded through every layer; the
    aggregates must stay bit-identical and the throughput within the bar.
    An *enabled* facade is also timed for the record (extra_info only — its
    cost is allowed to be real).
    """
    from repro.telemetry import Telemetry

    def measure():
        off_rps, disabled_rps, enabled_rps = [], [], []
        for _ in range(TELEMETRY_ROUNDS):  # interleaved: noise hits all paths alike
            rps, off_result = _timed_run(Scenario)
            off_rps.append(rps)
            rps, disabled_result = _timed_run(Scenario, telemetry=Telemetry(enabled=False))
            disabled_rps.append(rps)
            rps, _ = _timed_run(Scenario, telemetry=Telemetry())
            enabled_rps.append(rps)
        return off_rps, disabled_rps, enabled_rps, off_result, disabled_result

    off_rps, disabled_rps, enabled_rps, off_result, disabled_result = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # A real no-op-path regression slows *every* round; machine noise does
    # not.  Judge the best round-pairwise comparison, which is robust to the
    # +-5% run-to-run jitter of shared runners that a best-of-maxes
    # comparison still inherits.
    overhead = min(1.0 - d / o for d, o in zip(disabled_rps, off_rps))
    benchmark.extra_info["telemetry_off_requests_per_sec"] = round(max(off_rps), 1)
    benchmark.extra_info["telemetry_disabled_requests_per_sec"] = round(max(disabled_rps), 1)
    benchmark.extra_info["telemetry_enabled_requests_per_sec"] = round(max(enabled_rps), 1)
    benchmark.extra_info["telemetry_disabled_overhead"] = round(overhead, 4)
    print()
    print(
        f"  none: {max(off_rps):,.0f} req/s  disabled: {max(disabled_rps):,.0f} req/s  "
        f"enabled: {max(enabled_rps):,.0f} req/s  disabled overhead: {overhead:+.2%}"
    )

    # The disabled facade must not perturb the simulation in any way.
    assert disabled_result.completed_counts == off_result.completed_counts
    assert (
        disabled_result.per_class_mean_slowdowns() == off_result.per_class_mean_slowdowns()
    )
    assert disabled_result.rate_history == off_result.rate_history
    np.testing.assert_array_equal(
        disabled_result.ledger.completion_time, off_result.ledger.completion_time
    )
    assert overhead <= MAX_TELEMETRY_OFF_OVERHEAD, (
        f"disabled telemetry cost {overhead:.2%} of batched throughput "
        f"(allowed: {MAX_TELEMETRY_OFF_OVERHEAD:.0%})"
    )


@pytest.mark.benchmark(group="throughput")
def test_cluster_telemetry_noop_fast_path_overhead(benchmark):
    """A disabled telemetry facade must also be free on the cluster path.

    The cluster dispatch loop hoists its telemetry checks out of the
    per-request walk (one enabled-check per block/drain, not per request);
    this bench pins that with the same pairwise-min idiom as the
    single-server case.
    """
    from repro.telemetry import Telemetry

    def measure():
        off_rps, disabled_rps = [], []
        for _ in range(TELEMETRY_ROUNDS):  # interleaved: noise hits both alike
            rps, off_result = _timed_cluster_run(batched=True)
            off_rps.append(rps)
            rps, disabled_result = _timed_cluster_run(
                batched=True, telemetry=Telemetry(enabled=False)
            )
            disabled_rps.append(rps)
        return off_rps, disabled_rps, off_result, disabled_result

    off_rps, disabled_rps, off_result, disabled_result = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead = min(1.0 - d / o for d, o in zip(disabled_rps, off_rps))
    benchmark.extra_info["cluster_telemetry_off_requests_per_sec"] = round(max(off_rps), 1)
    benchmark.extra_info["cluster_telemetry_disabled_requests_per_sec"] = round(
        max(disabled_rps), 1
    )
    benchmark.extra_info["cluster_telemetry_disabled_overhead"] = round(overhead, 4)
    print()
    print(
        f"  none: {max(off_rps):,.0f} req/s  disabled: {max(disabled_rps):,.0f} req/s  "
        f"disabled overhead: {overhead:+.2%}"
    )

    assert disabled_result.completed_counts == off_result.completed_counts
    assert (
        disabled_result.per_class_mean_slowdowns() == off_result.per_class_mean_slowdowns()
    )
    np.testing.assert_array_equal(
        disabled_result.ledger.completion_time, off_result.ledger.completion_time
    )
    assert overhead <= MAX_TELEMETRY_OFF_OVERHEAD, (
        f"disabled telemetry cost {overhead:.2%} of batched cluster throughput "
        f"(allowed: {MAX_TELEMETRY_OFF_OVERHEAD:.0%})"
    )


@pytest.mark.benchmark(group="throughput")
def test_object_path_baseline_bookkeeping_is_faithful(benchmark):
    """The baseline's retained object bookkeeping reproduces the ledger's
    aggregates — evidence that the throughput comparison is apples-to-apples."""

    def run():
        classes, config, spec = _effectiveness_point()
        scenario = ObjectPathScenario(classes, config, spec=spec, seed=1)
        return scenario, scenario.run()

    scenario, result = benchmark.pedantic(run, rounds=1, iterations=1)
    ledger = result.ledger
    # Trace/monitor objects mirror the columnar truth record for record.
    assert len(scenario._object_trace) == ledger.num_completed
    np.testing.assert_array_equal(
        scenario._object_trace.to_arrays()["completion_time"],
        ledger.completion_time[ledger.completed_ids],
    )
    assert scenario._object_completed == list(result.completed_counts)
    assert scenario._object_generated == list(result.generated_counts)
    streaming = scenario._object_monitor.samples()
    vectorised = result.monitor.samples()
    assert len(streaming) == len(vectorised)
    for a, b in zip(streaming, vectorised):
        assert (a.start, a.end, a.counts) == (b.start, b.end, b.counts)
        np.testing.assert_array_equal(a.mean_slowdowns, b.mean_slowdowns)
