#!/usr/bin/env python
"""Bench-trajectory tracking: diff a bench JSON against the committed baseline.

CI uploads the fail-fast bench JSON as an artifact, which makes every run a
point-in-time snapshot nobody compares.  This script turns the snapshots
into a *trajectory*: it diffs the current ``pytest-benchmark`` JSON against
the committed ``benchmarks/BENCH_BASELINE.json``, prints a markdown delta
table (piped into the GitHub step summary by CI), and fails when a
throughput metric (``*requests_per_sec`` / ``*_rps``) regresses by more than
the threshold (25% by default — wide enough for runner-to-runner noise,
tight enough to catch a real hot-path regression).

Timing means and the remaining ``extra_info`` metrics (speedups, slowdown
ratios, p95s) are reported in the table but never gate: they are either
hardware-dependent or statistical, and the benches' own assertions already
bound them qualitatively.

Usage::

    python benchmarks/compare_bench.py bench.json                # compare
    python benchmarks/compare_bench.py bench.json --update       # refresh
    python benchmarks/compare_bench.py bench.json --summary "$GITHUB_STEP_SUMMARY"
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_BASELINE.json"

#: ``extra_info`` metrics matching one of these suffixes gate the build:
#: they are throughputs, where lower means a regression.
THROUGHPUT_SUFFIXES = ("requests_per_sec", "_rps")


def machine_fingerprint(bench_json: dict) -> str | None:
    """A coarse identity for the hardware the benches ran on.

    Absolute throughputs are only comparable between runs on similar
    machines; the fingerprint (hostname + CPU) lets :func:`compare` demote
    throughput-gate failures to warnings when the baseline came from a
    different box (e.g. a developer laptop vs the CI runner) — the table is
    still printed, and refreshing the baseline from a CI artifact restores
    the hard gate.
    """
    info = bench_json.get("machine_info")
    if not isinstance(info, dict):
        return None
    cpu = info.get("cpu")
    brand = cpu.get("brand_raw") if isinstance(cpu, dict) else None
    parts = [str(info.get(key)) for key in ("node", "machine") if info.get(key)]
    if brand:
        parts.append(str(brand))
    return "|".join(parts) if parts else None


def condense(bench_json: dict) -> dict:
    """Reduce a pytest-benchmark JSON to the committed baseline schema."""
    benchmarks = {}
    for bench in bench_json.get("benchmarks", []):
        benchmarks[bench["name"]] = {
            "mean_s": round(float(bench["stats"]["mean"]), 6),
            "extra_info": {
                key: value
                for key, value in sorted(bench.get("extra_info", {}).items())
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            },
        }
    condensed = {
        "_comment": (
            "Condensed fail-fast bench baseline; refresh with "
            "`python benchmarks/compare_bench.py <bench.json> --update` "
            "whenever a PR intentionally moves the numbers."
        ),
        "benchmarks": benchmarks,
    }
    fingerprint = machine_fingerprint(bench_json)
    if fingerprint:
        condensed["machine"] = fingerprint
    return condensed


def is_throughput_metric(name: str) -> bool:
    return name.endswith(THROUGHPUT_SUFFIXES)


def _delta(current: float, baseline: float) -> float | None:
    """Relative change vs the baseline (None when undefined)."""
    if baseline == 0:
        return None
    return (current - baseline) / abs(baseline)


def _format_delta(delta: float | None) -> str:
    if delta is None:
        return "n/a"
    return f"{delta:+.1%}"


def compare(current: dict, baseline: dict, *, threshold: float) -> tuple[list[str], list[str]]:
    """Diff two condensed bench dicts.

    Returns ``(table_lines, failures)`` where ``table_lines`` is a markdown
    table of every tracked metric and ``failures`` lists the throughput
    metrics that regressed past ``threshold``.  When both sides carry a
    machine fingerprint and they differ, throughput regressions are reported
    in the table but demoted from ``failures`` — absolute requests/sec on
    different hardware is variance, not a code regression.
    """
    rows: list[tuple[str, str, str, str, str, str]] = []
    failures: list[str] = []
    current_benches = current["benchmarks"]
    baseline_benches = baseline["benchmarks"]
    current_machine = current.get("machine")
    baseline_machine = baseline.get("machine")
    cross_machine = bool(
        current_machine and baseline_machine and current_machine != baseline_machine
    )

    for name, bench in sorted(current_benches.items()):
        base = baseline_benches.get(name)
        if base is None:
            rows.append((name, "mean time", f"{bench['mean_s']:.3f}s", "-", "new", ""))
            continue
        delta = _delta(bench["mean_s"], base["mean_s"])
        rows.append(
            (
                name,
                "mean time",
                f"{bench['mean_s']:.3f}s",
                f"{base['mean_s']:.3f}s",
                _format_delta(delta),
                "",
            )
        )
        base_info = base.get("extra_info", {})
        for metric, value in bench.get("extra_info", {}).items():
            base_value = base_info.get(metric)
            if base_value is None:
                rows.append((name, metric, f"{value:g}", "-", "new", ""))
                continue
            delta = _delta(float(value), float(base_value))
            note = ""
            if is_throughput_metric(metric):
                if delta is not None and delta < -threshold:
                    if cross_machine:
                        note = "WARN (different machine; refresh baseline from CI)"
                    else:
                        note = f"FAIL (> {threshold:.0%} regression)"
                        failures.append(
                            f"{name}: {metric} fell {-delta:.1%} "
                            f"({base_value:g} -> {value:g})"
                        )
                else:
                    note = "gates"
            rows.append((name, metric, f"{value:g}", f"{base_value:g}", _format_delta(delta), note))

    for name in sorted(set(baseline_benches) - set(current_benches)):
        rows.append(
            (name, "mean time", "-", f"{baseline_benches[name]['mean_s']:.3f}s", "missing", "")
        )

    lines = [
        "### Bench trajectory vs committed baseline",
        "",
        "| benchmark | metric | current | baseline | delta | |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    if cross_machine:
        lines.append("")
        lines.append(
            "_Baseline was recorded on different hardware; throughput deltas "
            "are reported but not gated. Refresh the baseline from a CI bench "
            "artifact to restore the hard gate._"
        )
    if failures:
        lines.append("")
        lines.append(f"**{len(failures)} throughput regression(s) past the threshold.**")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a pytest-benchmark JSON against the committed baseline."
    )
    parser.add_argument("bench_json", type=Path, help="pytest-benchmark JSON to check")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"condensed baseline path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated relative throughput drop (default: 0.25)",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="append the markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the bench JSON instead of comparing",
    )
    args = parser.parse_args(argv)

    current = condense(json.loads(args.bench_json.read_text()))
    if args.update:
        args.baseline.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.baseline} ({len(current['benchmarks'])} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create one")
        return 1
    baseline = json.loads(args.baseline.read_text())
    lines, failures = compare(current, baseline, threshold=args.threshold)
    table = "\n".join(lines)
    print(table)
    if args.summary is not None:
        with args.summary.open("a") as handle:
            handle.write(table + "\n")
    if failures:
        print(f"\n{len(failures)} throughput regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
