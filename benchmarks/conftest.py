"""Shared configuration for the reproduction benches.

Every bench regenerates one figure of the paper's evaluation: it runs the
corresponding experiment driver under ``pytest-benchmark`` (one round — the
benchmark measures the cost of regenerating the figure, the assertions check
that the paper's qualitative shape holds) and prints the same rows/series the
figure shows so they land in ``bench_output.txt``.

Two knobs:

* ``REPRO_BENCH_PRESET`` — ``bench`` (default, minutes for the full suite),
  ``quick`` (seconds, noisier), ``default`` or ``paper`` (the full Sec. 4.1
  protocol; hours).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig, get_preset
from repro.simulation import MeasurementConfig

#: Measurement protocol used by the benches unless overridden by environment.
#: Two-thirds of the paper's horizon with 6 replications instead of 100 —
#: enough for the qualitative shapes; absolute values carry 20-40% noise
#: because of the heavy-tailed job sizes.
BENCH_CONFIG = ExperimentConfig(
    measurement=MeasurementConfig(
        warmup=5_000.0, horizon=40_000.0, window=1_000.0, replications=6
    ),
    load_grid=(0.2, 0.4, 0.6, 0.8, 0.9),
    name="bench",
)


def _resolve_config() -> ExperimentConfig:
    preset = os.environ.get("REPRO_BENCH_PRESET", "bench")
    if preset == "bench":
        return BENCH_CONFIG
    return get_preset(preset)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration shared by all figure benches."""
    return _resolve_config()


def run_and_report(benchmark, driver, config, *, print_result=True):
    """Run an experiment driver once under the benchmark and print its table."""
    result = benchmark.pedantic(driver, args=(config,), rounds=1, iterations=1)
    if print_result:
        print()
        print(result.to_text())
    return result
