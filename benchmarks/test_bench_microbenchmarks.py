"""Micro-benchmarks of the building blocks.

Not tied to a paper figure; these track the cost of the pieces every
experiment leans on — Bounded Pareto sampling, the Eq. 17/18 closed forms,
the discrete-event simulator's event throughput and the WFQ scheduler — so
performance regressions in the substrate are visible separately from the
figure benches.
"""

import time

import numpy as np
import pytest

from repro.core import PsdSpec, allocate_rates, expected_slowdowns
from repro.distributions import BoundedPareto
from repro.experiments.base import ScenarioBuild
from repro.scheduling import WeightedFairQueueing
from repro.simulation import (
    MeasurementConfig,
    PsdServerSimulation,
    ReplicationRunner,
    Scenario,
    WorkerPool,
)
from repro.workload import web_classes


@pytest.mark.benchmark(group="micro")
def test_bounded_pareto_sampling_throughput(benchmark):
    bp = BoundedPareto.paper_default()
    rng = np.random.default_rng(0)

    def draw():
        return bp.sample(rng, 100_000)

    samples = benchmark(draw)
    assert samples.shape == (100_000,)
    assert samples.min() >= bp.k


@pytest.mark.benchmark(group="micro")
def test_rate_allocation_closed_form(benchmark):
    classes = web_classes(3, 0.8, (1.0, 2.0, 4.0))
    spec = PsdSpec.of(1, 2, 4)

    def allocate():
        allocation = allocate_rates(classes, spec)
        return allocation.rates, expected_slowdowns(classes, spec)

    rates, slowdowns = benchmark(allocate)
    assert sum(rates) == pytest.approx(1.0)
    assert slowdowns[2] / slowdowns[0] == pytest.approx(4.0)


@pytest.mark.benchmark(group="micro")
def test_simulator_event_throughput(benchmark):
    classes = web_classes(2, 0.6, (1.0, 2.0))
    config = MeasurementConfig(
        warmup=500.0, horizon=5_000.0, window=500.0
    ).scaled_to_time_units(classes[0].service.mean())

    def run():
        return PsdServerSimulation(classes, config, seed=1).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sum(result.completed_counts) > 1_000


@pytest.mark.benchmark(group="micro")
def test_wfq_selection_throughput(benchmark):
    rng = np.random.default_rng(2)
    sizes = rng.uniform(0.1, 2.0, size=5_000)

    def churn():
        scheduler = WeightedFairQueueing(4, weights=[0.4, 0.3, 0.2, 0.1])
        for i, size in enumerate(sizes):
            scheduler.enqueue(i % 4, float(size), 0.0, payload=i)
        served = 0
        now = 0.0
        while scheduler.total_backlog():
            job = scheduler.select(now)
            now += job.size
            served += 1
        return served

    served = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert served == sizes.size


@pytest.mark.benchmark(group="micro")
def test_replication_runner_serial_vs_parallel(benchmark):
    """Wall-time of serial vs forked parallel replications, same aggregate.

    The determinism contract is the hard assertion: ``workers=N`` must
    reproduce the ``workers=1`` summary statistics bit-for-bit (same child
    seeds in the same order, results re-assembled by replication index).
    The wall-times are printed for the record; no speedup is asserted —
    with one CPU (or tiny replications) fork + result pickling dominates.
    """
    classes = web_classes(2, 0.7, (1.0, 2.0))
    config = MeasurementConfig(
        warmup=500.0, horizon=6_000.0, window=500.0
    ).scaled_to_time_units(classes[0].service.mean())

    def build(_, seed_seq):
        return Scenario(classes, config, spec=PsdSpec.of(1, 2), seed=seed_seq).run()

    def timed(workers):
        start = time.perf_counter()
        summary = ReplicationRunner(replications=4, base_seed=1729, workers=workers).run(build)
        return time.perf_counter() - start, summary

    def run_both():
        serial_time, serial = timed(1)
        parallel_time, parallel = timed(2)
        return serial_time, serial, parallel_time, parallel

    serial_time, serial, parallel_time, parallel = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print()
    print(
        f"  serial: {serial_time:.2f}s  parallel(2 workers): {parallel_time:.2f}s  "
        f"speedup: {serial_time / parallel_time:.2f}x"
    )

    # Bit-identical aggregates regardless of worker count.
    assert parallel.per_class_slowdowns == serial.per_class_slowdowns
    assert parallel.system_slowdown == serial.system_slowdown
    assert parallel.ratios_to_first == serial.ratios_to_first
    assert parallel.mean_slowdowns == serial.mean_slowdowns
    assert [r.generated_counts for r in parallel.results] == [
        r.generated_counts for r in serial.results
    ]


@pytest.mark.benchmark(group="micro")
def test_worker_pool_reuse_across_batches(benchmark):
    """Per-batch forking vs a persistent pool over a multi-batch sweep.

    The pool amortises the fork cost that dominates small (quick-preset)
    batches; the hard assertion is again the determinism contract — the pool
    must reproduce the per-batch-fork summaries bit-for-bit for every batch
    of the sweep.  Wall-times are printed for the record; no speedup is
    asserted (with one CPU the pool saves only the forks).
    """
    classes = web_classes(2, 0.6, (1.0, 2.0))
    config = MeasurementConfig(
        warmup=300.0, horizon=2_500.0, window=300.0
    ).scaled_to_time_units(classes[0].service.mean())
    build = ScenarioBuild(tuple(classes), config, PsdSpec.of(1, 2))
    batches = 6

    def run_batches(pool):
        summaries = []
        for batch in range(batches):
            runner = ReplicationRunner(replications=4, base_seed=900 + batch, workers=2, pool=pool)
            summaries.append(runner.run(build))
        return summaries

    def timed():
        start = time.perf_counter()
        pool = WorkerPool(workers=2)
        try:
            pooled = run_batches(pool)
        finally:
            pool.close()
        pooled_time = time.perf_counter() - start
        # The fresh-pool-per-batch baseline isolates exactly the reuse win.
        start = time.perf_counter()
        forked = []
        for batch in range(batches):
            pool = WorkerPool(workers=2)
            try:
                forked.append(
                    ReplicationRunner(
                        replications=4, base_seed=900 + batch, workers=2, pool=pool
                    ).run(build)
                )
            finally:
                pool.close()
        forked_time = time.perf_counter() - start
        return pooled, pooled_time, forked, forked_time

    pooled, pooled_time, forked, forked_time = benchmark.pedantic(timed, rounds=1, iterations=1)
    print()
    print(
        f"  persistent pool: {pooled_time:.2f}s  fork-per-batch: {forked_time:.2f}s  "
        f"({batches} batches x 4 replications)"
    )
    for reused, fresh in zip(pooled, forked):
        assert reused.per_class_slowdowns == fresh.per_class_slowdowns
        assert reused.system_slowdown == fresh.system_slowdown
        assert reused.ratios_to_first == fresh.ratios_to_first
