#!/usr/bin/env python
"""Adaptive rate re-allocation under a traffic shift.

The PSD controller estimates each class's load every window (1000 time
units) from the last five windows and re-solves Eq. 17.  This demo drives
the server with a *non-stationary* workload — halfway through the run the
low-priority class's arrival rate triples — and shows how the allocated
rates and the per-window slowdown ratio react.

It also demonstrates extending the library: the time-varying arrival process
is a tiny custom ``ArrivalProcess`` subclass defined right here.

Run with::

    python examples/adaptive_controller_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PsdSpec
from repro.distributions import BoundedPareto, spawn_generators
from repro.experiments import render_table
from repro.queueing import arrival_rate_for_load
from repro.simulation import (
    ArrivalProcess,
    MeasurementConfig,
    RequestSource,
    Scenario,
)
from repro.types import TrafficClass


class PiecewiseRatePoisson(ArrivalProcess):
    """Poisson arrivals whose rate switches at a given simulated time."""

    def __init__(self, rate_before: float, rate_after: float, switch_time: float) -> None:
        self.rate_before = rate_before
        self.rate_after = rate_after
        self.switch_time = switch_time
        self._elapsed = 0.0

    def next_interarrival(self, rng: np.random.Generator) -> float:
        rate = self.rate_before if self._elapsed < self.switch_time else self.rate_after
        gap = float(rng.exponential(1.0 / rate))
        self._elapsed += gap
        return gap


def main() -> None:
    service = BoundedPareto.paper_default()
    spec = PsdSpec.of(1, 2)
    base_rate = arrival_rate_for_load(0.5, service) / 2  # 25% load per class

    config = MeasurementConfig(
        warmup=2_000.0, horizon=24_000.0, window=1_000.0
    ).scaled_to_time_units(service.mean())
    switch_time = config.horizon / 2

    classes = (
        TrafficClass("interactive", base_rate, service, delta=1.0),
        TrafficClass("batch", base_rate, service, delta=2.0),
    )
    rngs = spawn_generators(99, 2)
    sources = [
        RequestSource(
            0, PiecewiseRatePoisson(base_rate, base_rate, switch_time), service, rngs[0]
        ),
        # The batch class's traffic grows 2.2x halfway through the run,
        # raising the total system load from 50% to 80%; the controller must
        # shift capacity toward it to keep the slowdown ratio at the target.
        RequestSource(
            1, PiecewiseRatePoisson(base_rate, 2.2 * base_rate, switch_time), service, rngs[1]
        ),
    ]

    # Explicit sources plug straight into the Scenario assembly; the server
    # model defaults to the paper's idealised rate-scalable task servers.
    sim = Scenario(classes, config, spec=spec, sources=sources, seed=1)
    result = sim.run()

    print("Rate allocated to each class over time (every 4th window shown):")
    rows = []
    for time, rates in result.rate_history[::4]:
        rows.append(
            {
                "time (time units)": time / service.mean(),
                "interactive rate": rates[0],
                "batch rate": rates[1],
                "phase": "before shift" if time < switch_time else "after shift",
            }
        )
    print(render_table(tuple(rows[0].keys()), rows))

    before = [r for t, r in result.rate_history if 0 < t < switch_time]
    after = [r for t, r in result.rate_history if t >= switch_time + 5 * config.window]
    mean_before = np.mean([r[1] for r in before])
    mean_after = np.mean([r[1] for r in after])
    print(f"\nmean rate granted to the batch class: {mean_before:.3f} before the "
          f"shift -> {mean_after:.3f} after it (its traffic grew 2.2x)")

    samples = result.monitor.samples()
    ratios = [s.ratio(1, 0) for s in samples if not np.isnan(s.ratio(1, 0))]
    print(f"median per-window slowdown ratio batch/interactive: "
          f"{np.median(ratios):.2f} (target {spec.target_ratio(1, 0):.1f})")
    print(f"controller decisions recorded: {len(result.controller.decisions)}")


if __name__ == "__main__":
    main()
