#!/usr/bin/env python
"""Realising the rate allocation: idealised task servers vs real schedulers.

The paper assumes the server's capacity "can be proportionally allocated to a
number of task servers" via GPS, PGPS (WFQ) or lottery scheduling.  This
example runs the same two-class workload under:

* the idealised per-class task servers of the paper's simulation model,
* one shared full-speed processor scheduled by WFQ, lottery scheduling and
  deficit weighted round robin with weights equal to the allocated rates,
* strict priority scheduling (the related-work baseline that differentiates
  but cannot control the spacing).

and prints the achieved slowdown ratio of each realisation against the
target.

Run with::

    python examples/scheduler_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PsdSpec
from repro.experiments import render_table
from repro.scheduling import (
    DeficitWeightedRoundRobin,
    LotteryScheduler,
    StrictPriorityScheduler,
    WeightedFairQueueing,
)
from repro.simulation import (
    MeasurementConfig,
    RateScalableServers,
    ReplicationRunner,
    Scenario,
    SharedProcessorServer,
)
from repro.workload import paper_service_distribution, web_classes

DELTAS = (1.0, 2.0)
LOAD = 0.7
REPLICATIONS = 3


def run_realisation(name, classes, spec, config, seed):
    # Every realisation is "the same Scenario, a different ServerModel":
    # the sources, monitor and controller are assembled identically, only
    # the serving substrate changes.
    def make_server():
        if name == "task servers (paper)":
            return RateScalableServers()
        if name == "wfq":
            return SharedProcessorServer(WeightedFairQueueing(2))
        if name == "lottery":
            return SharedProcessorServer(LotteryScheduler(2, rng=np.random.default_rng(seed)))
        if name == "drr":
            return SharedProcessorServer(
                DeficitWeightedRoundRobin(2, quantum=classes[0].service.mean())
            )
        if name == "strict priority":
            return SharedProcessorServer(StrictPriorityScheduler(2))
        raise ValueError(name)

    def build(_, seed_seq):
        return Scenario(classes, config, server=make_server(), spec=spec, seed=seed_seq).run()

    runner = ReplicationRunner(replications=REPLICATIONS, base_seed=seed, workers=0)
    return runner.run(build)


def main() -> None:
    service = paper_service_distribution()
    classes = web_classes(2, LOAD, DELTAS, service=service)
    spec = PsdSpec(DELTAS)
    config = MeasurementConfig(
        warmup=2_000.0, horizon=16_000.0, window=1_000.0
    ).scaled_to_time_units(service.mean())

    rows = []
    for seed, name in enumerate(
        ("task servers (paper)", "wfq", "lottery", "drr", "strict priority"), start=50
    ):
        summary = run_realisation(name, classes, spec, config, seed)
        slowdowns = summary.mean_slowdowns
        rows.append(
            {
                "realisation": name,
                "class-1 slowdown": slowdowns[0],
                "class-2 slowdown": slowdowns[1],
                "achieved ratio": summary.ratio_of_mean_slowdowns[1],
                "target ratio": spec.target_ratio(1, 0),
            }
        )

    print(f"Two classes, deltas {DELTAS}, system load {LOAD:.0%}, "
          f"{REPLICATIONS} replications per realisation\n")
    print(render_table(tuple(rows[0].keys()), rows))
    print(
        "\nObservations: the idealised task servers track the 2x target.  The "
        "packetised realisations on one non-preemptive processor keep the "
        "ordering but with a much smaller spacing — the shared busy period "
        "couples the classes and every request is served at full speed, so the "
        "rate weights only shape who waits, not for how long they are served.  "
        "Strict priority produces whatever spacing the load dictates; it cannot "
        "be controlled by the differentiation parameters."
    )


if __name__ == "__main__":
    main()
