#!/usr/bin/env python
"""Quickstart: proportional slowdown differentiation in a dozen lines.

The script walks through the paper's pipeline end to end:

1. describe the workload — two request classes sharing the server, each a
   Poisson stream of Bounded Pareto ("heavy-tailed Web") requests;
2. pick differentiation parameters (class "gold" should see half the
   slowdown of class "silver");
3. compute the processing-rate allocation of Eq. 17 and the closed-form
   expected slowdowns of Eq. 18;
4. simulate the server of Fig. 1 and compare the measured slowdowns with the
   closed forms.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BoundedPareto,
    MeasurementConfig,
    PsdSpec,
    RateScalableServers,
    Scenario,
    TrafficClass,
    allocate_rates,
    expected_slowdowns,
)
from repro.queueing import arrival_rate_for_load


def main() -> None:
    # 1. Workload: the paper's Bounded Pareto (smallest job 0.1, largest 100,
    #    shape 1.5) with the two classes splitting a 70% system load evenly.
    service = BoundedPareto.paper_default()
    system_load = 0.7
    per_class_rate = arrival_rate_for_load(system_load, service) / 2
    classes = [
        TrafficClass("gold", per_class_rate, service, delta=1.0),
        TrafficClass("silver", per_class_rate, service, delta=2.0),
    ]

    # 2. Differentiation: silver's slowdown should be 2x gold's (Eq. 16).
    spec = PsdSpec.of(1, 2)

    # 3. Rate allocation (Eq. 17) and predicted slowdowns (Eq. 18).
    allocation = allocate_rates(classes, spec)
    predicted = expected_slowdowns(classes, spec)
    print("Processing-rate allocation (Eq. 17)")
    for cls, rate, load in zip(classes, allocation.rates, allocation.offered_loads):
        print(f"  {cls.name:<7} rate={rate:.4f}  offered load={load:.4f}")
    print(f"  total load rho = {allocation.total_load:.3f}, residual capacity = "
          f"{allocation.residual_capacity:.3f}")
    print("Expected slowdowns (Eq. 18)")
    for cls, value in zip(classes, predicted):
        print(f"  {cls.name:<7} E[S] = {value:.2f}")
    print(f"  predicted ratio silver/gold = {predicted[1] / predicted[0]:.2f}\n")

    # 4. Simulate the Fig. 1 server: a Scenario wires the sources, monitor
    #    and controller around a pluggable server model — here the paper's
    #    idealised per-class rate-scalable task servers.  Swap the server
    #    for SharedProcessorServer(WeightedFairQueueing(2)) to see the same
    #    workload on a realistic scheduler-driven processor.
    config = MeasurementConfig(
        warmup=2_000.0, horizon=20_000.0, window=1_000.0
    ).scaled_to_time_units(service.mean())
    result = Scenario(classes, config, server=RateScalableServers(), spec=spec, seed=2004).run()

    measured = result.per_class_mean_slowdowns()
    print("Simulated slowdowns (one run, 20k time units)")
    for cls, sim, exp in zip(classes, measured, predicted):
        print(f"  {cls.name:<7} simulated={sim:8.2f}  expected={exp:8.2f}")
    print(f"  achieved ratio silver/gold = {measured[1] / measured[0]:.2f} "
          f"(target {spec.target_ratio(1, 0):.1f})")
    print(f"  requests completed: {sum(result.completed_counts)}")


if __name__ == "__main__":
    main()
