#!/usr/bin/env python
"""Session-based e-commerce differentiation (the M/D/1 scenario of Sec. 2.2).

Requests at session states such as "home entry" or "register" take
approximately the same service time, so each class behaves as an M/D/1 queue
and the expected slowdown on a task server collapses to Eq. 15:

    E[S] = rho / (2 (1 - rho)).

The script builds a three-class session workload (guests, members, premium
members), allocates processing rates with Eq. 17, verifies the M/D/1
predictions against simulation, and shows that the slowdown ratios still
follow the differentiation parameters even though the job-size distribution
is deterministic rather than heavy-tailed.

Run with::

    python examples/ecommerce_sessions.py
"""

from __future__ import annotations

from repro.core import PsdSpec, allocate_rates, expected_slowdowns
from repro.experiments import render_table
from repro.queueing import md1_expected_slowdown
from repro.simulation import MeasurementConfig, ReplicationRunner, Scenario
from repro.workload import SessionProfile, ecommerce_classes

DELTAS = (1.0, 2.0, 4.0)          # premium, member, guest
NAMES = ("premium", "member", "guest")
SYSTEM_LOAD = 0.75


def main() -> None:
    profile = SessionProfile()
    classes = ecommerce_classes(SYSTEM_LOAD, DELTAS, profile=profile)
    spec = PsdSpec(DELTAS)

    allocation = allocate_rates(classes, spec)
    predicted = expected_slowdowns(classes, spec)

    print("Session-based workload: every request takes exactly "
          f"{profile.mean_service_time:.1f} time unit(s)")
    rows = []
    for name, cls, rate in zip(NAMES, classes, allocation.rates):
        # Eq. 15 applied to this class's task server.
        rho = cls.arrival_rate * profile.mean_service_time / rate
        rows.append(
            {
                "class": name,
                "delta": cls.delta,
                "allocated rate": rate,
                "task-server utilisation": rho,
                "Eq. 15 slowdown": md1_expected_slowdown(
                    cls.arrival_rate, profile.mean_service_time, rate=rate
                ),
                "Eq. 18 slowdown": predicted[NAMES.index(name)],
            }
        )
    print(render_table(tuple(rows[0].keys()), rows))
    print()

    # Simulate and compare.
    config = MeasurementConfig(warmup=2_000.0, horizon=20_000.0, window=1_000.0)

    def build(_, seed_seq):
        return Scenario(classes, config, spec=spec, seed=seed_seq).run()

    # workers=0 auto-sizes to the CPU count; the aggregate is identical to a
    # serial run for the same base seed.
    summary = ReplicationRunner(replications=3, base_seed=7, workers=0).run(build)
    print("Simulated vs expected (3 replications):")
    out = []
    for name, sim, exp in zip(NAMES, summary.mean_slowdowns, predicted):
        out.append({"class": name, "simulated": sim, "expected": exp,
                    "relative error": abs(sim - exp) / exp})
    print(render_table(("class", "simulated", "expected", "relative error"), out))
    ratios = summary.ratio_of_mean_slowdowns
    print(f"\nachieved ratios to premium: member={ratios[1]:.2f} (target 2), "
          f"guest={ratios[2]:.2f} (target 4)")
    print("Note how the deterministic workload converges far faster than the "
          "heavy-tailed one: the M/D/1 closed form is matched within a few percent.")


if __name__ == "__main__":
    main()
