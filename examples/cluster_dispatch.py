#!/usr/bin/env python
"""Dispatch-policy shoot-out on a four-node PSD cluster.

The paper's control loop — estimate the per-class load, re-solve Eq. 17,
push the rates — is substrate-agnostic; `repro.cluster` lets the substrate
be a whole cluster.  This example serves the two-class workload of the
quickstart on four idealised nodes and compares every bundled dispatch
policy at moderate (0.5) and high (0.9) system load:

* all policies preserve the *ratio* between the classes' slowdowns (the
  differentiation target survives clustering), while
* backlog-aware dispatch (join-shortest-queue, least-work-left) pools the
  nodes' queues and crushes the absolute slowdowns at high load.

A second act makes the fleet heterogeneous (a 2:1 capacity mix at the same
total speed) and contrasts capacity-blind dispatch+partitioning — which
overloads the slow nodes — with the capacity-aware pairing that restores
the single-server behaviour.

A third act makes the fleet *dynamic*: the fast node is killed mid-run
(draining its queue before going down) and restored later.  The dispatch
policy and rate partitioner re-normalise over the live nodes at each event,
and the per-window availability/ratio table shows the controller absorbing
the outage and re-converging after the restore.

Run with::

    python examples/cluster_dispatch.py
"""

from __future__ import annotations

import numpy as np

from repro import MeasurementConfig, PsdSpec, Scenario, make_cluster
from repro.cluster import (
    DISPATCH_POLICIES,
    build_partitioner,
    parse_fleet_events,
    resolve_capacities,
)
from repro.distributions import BoundedPareto
from repro.queueing import arrival_rate_for_load
from repro.types import TrafficClass

NUM_NODES = 4

#: Capacity-blind -> capacity-aware pairings for the heterogeneous act.
HETERO_PAIRINGS = (
    ("round_robin", "equal"),
    ("weighted_jsq", "capacity"),
    ("fastest_available", "capacity"),
)


def main() -> None:
    service = BoundedPareto(k=0.1, p=10.0, alpha=1.5)  # moderate tail: fast converge
    spec = PsdSpec.of(1, 2)
    config = MeasurementConfig(
        warmup=2_000.0, horizon=16_000.0, window=1_000.0
    ).scaled_to_time_units(service.mean())

    for load in (0.5, 0.9):
        per_class = arrival_rate_for_load(load, service) / 2
        classes = [
            TrafficClass("gold", per_class, service, delta=1.0),
            TrafficClass("silver", per_class, service, delta=2.0),
        ]
        print(f"system load {load:.0%}, {NUM_NODES} nodes, target ratio 2.0")
        print(f"  {'policy':<16} {'gold':>8} {'silver':>8} {'ratio':>7} {'p95':>8}")
        for name in sorted(DISPATCH_POLICIES):
            cluster = make_cluster(NUM_NODES, name, seed=2004)
            result = Scenario(classes, config, server=cluster, spec=spec, seed=7).run()
            gold, silver = result.per_class_mean_slowdowns()
            slowdowns = [r.slowdown for r in result.measured_records()]
            p95 = float(np.percentile(slowdowns, 95)) if slowdowns else float("nan")
            print(
                f"  {name:<16} {gold:8.2f} {silver:8.2f} "
                f"{silver / gold:7.2f} {p95:8.2f}"
            )
        print()

    capacities = resolve_capacities("2:1", NUM_NODES)
    load = 0.9
    per_class = arrival_rate_for_load(load, service) / 2
    classes = [
        TrafficClass("gold", per_class, service, delta=1.0),
        TrafficClass("silver", per_class, service, delta=2.0),
    ]
    print(
        f"heterogeneous 2:1 fleet ({NUM_NODES} nodes, same total capacity), "
        f"load {load:.0%}"
    )
    print(f"  {'policy + partitioner':<30} {'gold':>8} {'silver':>8} {'ratio':>7} {'p95':>8}")
    for name, partitioner in HETERO_PAIRINGS:
        cluster = make_cluster(
            NUM_NODES,
            name,
            capacities=capacities,
            partitioner=build_partitioner(partitioner),
            seed=2004,
        )
        result = Scenario(classes, config, server=cluster, spec=spec, seed=7).run()
        gold, silver = result.per_class_mean_slowdowns()
        slowdowns = [r.slowdown for r in result.measured_records()]
        p95 = float(np.percentile(slowdowns, 95)) if slowdowns else float("nan")
        print(
            f"  {name + ' + ' + partitioner:<30} {gold:8.2f} {silver:8.2f} "
            f"{silver / gold:7.2f} {p95:8.2f}"
        )

    # --- Act 3: dynamic fleet — kill the fast node, drain, restore. ------ #
    time_unit = service.mean()
    fleet = parse_fleet_events("kill:0@7000 restore:0@7400").scaled_to_time_units(time_unit)
    cluster = make_cluster(
        NUM_NODES,
        "weighted_jsq",
        capacities=capacities,
        partitioner=build_partitioner("capacity"),
        fleet=fleet,
        seed=2004,
    )
    result = Scenario(classes, config, server=cluster, spec=spec, seed=7).run()
    monitor = result.monitor
    availability = result.per_node_availability()
    print()
    print(
        "dynamic 2:1 fleet (weighted_jsq + capacity): kill fastest node at "
        "t=7000 tu, restore at t=7400 tu"
    )
    print(f"  {'window (tu)':<16} {'live frac':>10} {'ratio':>7}")
    for sample in monitor.samples():
        index = round((sample.start - monitor.warmup) / monitor.window)
        if index >= len(availability):
            break
        live_fraction = float(availability[index].mean())
        start_tu = sample.start / time_unit
        end_tu = sample.end / time_unit
        print(
            f"  [{start_tu:6.0f},{end_tu:6.0f}) {live_fraction:10.2f} "
            f"{sample.ratio(1, 0):7.2f}"
        )


if __name__ == "__main__":
    main()
