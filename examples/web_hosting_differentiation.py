#!/usr/bin/env python
"""Three-tier Web-content-hosting differentiation across a load sweep.

The motivating scenario from the paper's introduction: a shared Web hosting
server serves gold / silver / bronze customers and wants each tier's
*slowdown* (delay per unit of service) to stay in fixed proportions no matter
how busy the server gets — bronze may be 3x worse than gold, but never
arbitrarily worse.

The script sweeps the system load, prints the Eq. 18 predictions next to the
simulated slowdowns for every tier, and then demonstrates the three analytic
properties of Sec. 3 (what happens when a tier's traffic or its
differentiation parameter changes).

Run with::

    python examples/web_hosting_differentiation.py
"""

from __future__ import annotations

from repro.core import PsdSpec, check_all_properties, expected_slowdowns
from repro.experiments import render_table
from repro.simulation import MeasurementConfig, Scenario, run_replications
from repro.workload import paper_service_distribution, web_classes

TIERS = ("gold", "silver", "bronze")
DELTAS = (1.0, 2.0, 3.0)
LOADS = (0.3, 0.5, 0.7, 0.85)


def simulate(classes, spec, config, seed):
    def build(_, seed_seq):
        return Scenario(classes, config, spec=spec, seed=seed_seq).run()

    # workers=0 fans the replications out across the available CPUs while
    # keeping the aggregate bit-identical to a serial run.
    return run_replications(build, replications=3, base_seed=seed, workers=0)


def main() -> None:
    service = paper_service_distribution()
    spec = PsdSpec(DELTAS)
    config = MeasurementConfig(
        warmup=2_000.0, horizon=16_000.0, window=1_000.0
    ).scaled_to_time_units(service.mean())

    rows = []
    for seed, load in enumerate(LOADS):
        classes = web_classes(3, load, DELTAS, service=service)
        expected = expected_slowdowns(classes, spec)
        summary = simulate(classes, spec, config, seed=100 + seed)
        simulated = summary.mean_slowdowns
        rows.append(
            {
                "load": load,
                "gold (sim/exp)": f"{simulated[0]:.1f} / {expected[0]:.1f}",
                "silver (sim/exp)": f"{simulated[1]:.1f} / {expected[1]:.1f}",
                "bronze (sim/exp)": f"{simulated[2]:.1f} / {expected[2]:.1f}",
                "bronze/gold ratio": f"{simulated[2] / simulated[0]:.2f} (target 3)",
            }
        )

    print("Three-tier PSD provisioning, Bounded Pareto(0.1, 100, 1.5) requests")
    print(render_table(tuple(rows[0].keys()), rows))
    print()

    # The three properties of Sec. 3, evaluated at 70% load.
    classes = web_classes(3, 0.7, DELTAS, service=service)
    print("Analytic properties of the allocation (Sec. 3):")
    for check in check_all_properties(classes, spec):
        status = "holds" if check.holds else "VIOLATED"
        print(f"  [{status}] {check.name}: {check.detail}")


if __name__ == "__main__":
    main()
