#!/usr/bin/env python
"""Replay a recorded arrival log through the PSD server — and capture it back.

Production provisioning is evaluated against *recorded* traffic, not just
synthetic Poisson streams.  This example loads the bundled sample trace (two
classes, ~480 requests of the paper's Bounded Pareto workload recorded at
60% system load) with :func:`repro.simulation.load_trace` — the log is
parsed straight into NumPy arrays and replayed by cursor, so the same code
path handles multi-million-request logs — and drives a :class:`Scenario`
with the resulting per-class sources instead of live generators.

It then closes the loop with :func:`repro.simulation.save_trace`: the
completed run's request ledger is written back out as a fresh arrival log
(the simulation *is* the recorder), reloaded, and replayed again — the
capture/replay cycle behind regression pipelines that re-test provisioning
policies against yesterday's traffic.

Run with::

    python examples/trace_replay.py [path/to/trace.csv]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import (
    BoundedPareto,
    MeasurementConfig,
    PsdSpec,
    Scenario,
    TrafficClass,
)
from repro.simulation import load_trace, save_trace

SAMPLE_TRACE = os.path.join(os.path.dirname(__file__), "data", "sample_trace.csv")


def main(path: str = SAMPLE_TRACE) -> None:
    sources = load_trace(path)
    print(f"loaded {path}")
    for source in sources:
        print(f"  class {source.class_index}: {len(source)} recorded requests")

    # The controller still needs the classes' nominal description (service
    # distribution for the moment terms, arrival rate as the estimator
    # prior); the trace itself dictates what actually arrives.
    service = BoundedPareto.paper_default()
    nominal_rate = 0.3 / service.mean()  # each class was recorded at 30% load
    classes = [
        TrafficClass("gold", nominal_rate, service, delta=1.0),
        TrafficClass("silver", nominal_rate, service, delta=2.0),
    ]

    config = MeasurementConfig(warmup=30.0, horizon=300.0, window=15.0)
    result = Scenario(classes, config, spec=PsdSpec.of(1, 2), sources=sources).run()

    measured = result.per_class_mean_slowdowns()
    print("\nReplayed through the adaptive PSD server (target ratio 2.0):")
    for cls, slowdown, completed in zip(classes, measured, result.completed_counts):
        print(f"  {cls.name:<7} completed={completed:4d}  mean slowdown={slowdown:8.2f}")
    if measured[0] > 0:
        print(f"  achieved ratio silver/gold = {measured[1] / measured[0]:.2f}")

    # Close the loop: capture the run we just simulated as a new arrival
    # log (straight from the columnar ledger — no per-request objects) and
    # replay the capture.  The re-run reproduces the run exactly.
    handle, capture_path = tempfile.mkstemp(prefix="trace_replay_capture_", suffix=".csv")
    os.close(handle)
    save_trace(capture_path, result)
    recaptured = Scenario(
        classes,
        config,
        spec=PsdSpec.of(1, 2),
        sources=load_trace(capture_path, num_classes=len(classes)),
    ).run()
    print(f"\nCaptured the run to {capture_path} and replayed it:")
    print(f"  completions match: {recaptured.completed_counts == result.completed_counts}")
    print(
        "  slowdowns match:   "
        f"{recaptured.per_class_mean_slowdowns() == result.per_class_mean_slowdowns()}"
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
